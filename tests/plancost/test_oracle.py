"""The oracle's exactness contract: cost == engine analytical mode, always."""

import numpy as np
import pytest

from repro.accel import ChipConfig
from repro.models.zoo import alexnet_spec, convnet_spec, lenet_spec
from repro.partition import build_degree_plan, build_traditional_plan
from repro.plancost import PlanCostOracle, analytic_plan_cost, candidate_degrees
from repro.plancost.calibrate import sample_degree_configs
from repro.sim.engine import InferenceSimulator, SimConfig


def _analytic_sim(num_cores: int) -> InferenceSimulator:
    return InferenceSimulator(
        ChipConfig.table2(num_cores),
        SimConfig(comm_mode="analytical", comm_cache=False),
    )


class TestCandidateDegrees:
    def test_divisors(self):
        assert candidate_degrees(16) == (1, 2, 4, 8, 16)
        assert candidate_degrees(12) == (1, 2, 3, 4, 6, 12)

    def test_invalid(self):
        with pytest.raises(ValueError):
            candidate_degrees(0)


class TestOracleExactness:
    @pytest.mark.parametrize(
        "spec_fn", [lenet_spec, convnet_spec, alexnet_spec], ids=lambda f: f.__name__
    )
    def test_cost_equals_engine_analytical(self, spec_fn):
        """Every sampled config: oracle cost == engine analytical-mode cycles."""
        spec = spec_fn()
        oracle = PlanCostOracle(spec, 16)
        sim = _analytic_sim(16)
        for config in sample_degree_configs(oracle, k=6, seed=3):
            plan = build_degree_plan(spec, 16, config)
            engine = sim.simulate(plan).total_cycles
            assert oracle.cost(config) == engine

    def test_all_cores_config_matches_traditional_plan(self):
        spec = convnet_spec()
        oracle = PlanCostOracle(spec, 16)
        config = tuple([16] * oracle.num_layers)
        sim = _analytic_sim(16)
        engine = sim.simulate(build_traditional_plan(spec, 16)).total_cycles
        assert oracle.cost(config) == engine

    def test_batch_cost_matches_scalar_cost(self):
        oracle = PlanCostOracle(lenet_spec(), 16)
        configs = sample_degree_configs(oracle, k=8, seed=0)
        batch = np.stack([oracle.to_indices(c) for c in configs])
        costs = oracle.batch_cost(batch)
        for config, cost in zip(configs, costs):
            assert float(cost) == oracle.cost(config)

    def test_invalid_degree_costs_inf(self):
        """alexnet's grouped convs cannot run group-misaligned degrees."""
        spec = alexnet_spec()
        # Degree 3 misaligns with the 2-way grouped layers (3 % 2 != 0).
        oracle = PlanCostOracle(spec, 16, degrees=(1, 2, 3, 16))
        assert not oracle.valid.all()
        li, pi = map(int, np.argwhere(~oracle.valid)[0])
        config = [oracle.degrees[-1]] * oracle.num_layers
        config[li] = oracle.degrees[pi]
        assert oracle.cost(tuple(config)) == np.inf

    def test_input_load_excluded_when_asked(self):
        spec = lenet_spec()
        with_load = PlanCostOracle(spec, 16)
        without = PlanCostOracle(spec, 16, include_input_load=False)
        config = tuple([16] * with_load.num_layers)
        assert with_load.cost(config) - without.cost(config) == with_load.input_load
        assert without.input_load == 0

    def test_chip_core_count_mismatch(self):
        with pytest.raises(ValueError):
            PlanCostOracle(lenet_spec(), 16, chip=ChipConfig.table2(4))

    def test_bad_config_length(self):
        oracle = PlanCostOracle(lenet_spec(), 16)
        with pytest.raises(ValueError):
            oracle.cost((16, 16))

    def test_unknown_degree(self):
        oracle = PlanCostOracle(lenet_spec(), 16, degrees=(1, 16))
        with pytest.raises(ValueError):
            oracle.to_indices(tuple([3] * oracle.num_layers))


class TestAnalyticPlanCost:
    @pytest.mark.parametrize("num_cores", [4, 16])
    @pytest.mark.parametrize(
        "spec_fn", [lenet_spec, convnet_spec], ids=lambda f: f.__name__
    )
    def test_matches_engine_analytical(self, spec_fn, num_cores):
        spec = spec_fn()
        plan = build_traditional_plan(spec, num_cores)
        engine = _analytic_sim(num_cores).simulate(plan).total_cycles
        assert analytic_plan_cost(plan) == engine

    def test_without_input_load(self):
        plan = build_traditional_plan(lenet_spec(), 16)
        full = analytic_plan_cost(plan)
        body = analytic_plan_cost(plan, include_input_load=False)
        assert 0 < body < full
