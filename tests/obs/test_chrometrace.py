"""Tests for the Chrome trace-event (Perfetto) exporter."""

import json

from repro.obs.chrometrace import (
    chrome_trace_events,
    export_chrome_trace,
    validate_chrome_trace,
)
from repro.obs.timeseries import ServeTimeSeries


def _span(name, t_wall, dur_s, thread="main", sid=1, attrs=None):
    return {
        "type": "span",
        "name": name,
        "id": sid,
        "parent": None,
        "thread": thread,
        "t_wall": t_wall,
        "dur_s": dur_s,
        "attrs": attrs or {},
    }


def _series_record():
    s = ServeTimeSeries("unit", groups=2, window_cycles=100)
    # Two requests batched together on replica 0, one solo on replica 1.
    s.on_arrival(0)
    s.on_arrival(5)
    s.on_dispatch(10, 0, 40, 2)
    s.on_arrival(20)
    s.on_dispatch(20, 1, 30, 1)
    s.on_completion(0, 0, 10, 50, 0, 2)
    s.on_completion(1, 5, 10, 50, 0, 2)
    s.on_completion(2, 20, 20, 50, 1, 1)
    s.finalize()
    return s.to_dict()


class TestSpanEvents:
    def test_nested_spans_validate(self):
        records = [
            _span("outer", 0.0, 1.0, sid=1),
            _span("inner", 0.2, 0.5, sid=2),
        ]
        events = chrome_trace_events(records)
        assert validate_chrome_trace(events) == []
        names = [e["name"] for e in events if e["ph"] == "B"]
        assert names == ["outer", "inner"]

    def test_adopted_overlapping_spans_spill_to_overflow_lane(self):
        # Two spans on the same thread name that partially overlap — the
        # shape adopt_records produces when a worker's wall clock skews.
        records = [
            _span("parent-side", 0.0, 1.0, thread="MainThread", sid=1),
            _span("worker-side", 0.5, 1.0, thread="MainThread", sid=2),
        ]
        events = chrome_trace_events(records)
        assert validate_chrome_trace(events) == []
        labels = [
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert "MainThread" in labels
        assert "MainThread (overflow)" in labels
        # The two B events sit on different tids.
        tids = {e["tid"] for e in events if e["ph"] == "B"}
        assert len(tids) == 2

    def test_disjoint_spans_share_a_lane(self):
        records = [
            _span("a", 0.0, 0.1, sid=1),
            _span("b", 0.5, 0.1, sid=2),
        ]
        events = chrome_trace_events(records)
        assert validate_chrome_trace(events) == []
        tids = {e["tid"] for e in events if e["ph"] == "B"}
        assert len(tids) == 1


class TestServeEvents:
    def test_batches_and_flows(self):
        events = chrome_trace_events([_series_record()])
        assert validate_chrome_trace(events) == []
        batches = [e for e in events if e["ph"] == "B" and e.get("cat") == "batch"]
        assert sorted(e["name"] for e in batches) == ["batch[1]", "batch[2]"]
        two = next(e for e in batches if e["name"] == "batch[2]")
        assert sorted(two["args"]["requests"]) == [0, 1]
        # One flow start per request, each resolving into a batch slice.
        starts = [e for e in events if e["ph"] == "s"]
        finishes = [e for e in events if e["ph"] == "f"]
        assert len(starts) == len(finishes) == 3
        assert {e["id"] for e in starts} == {e["id"] for e in finishes}
        assert all(e.get("bp") == "e" for e in finishes)

    def test_queued_intervals_pair_up(self):
        events = chrome_trace_events([_series_record()])
        b = sum(1 for e in events if e["ph"] == "b")
        e_ = sum(1 for e in events if e["ph"] == "e")
        assert b == e_ == 3

    def test_multiple_series_get_distinct_pids_and_flow_ids(self):
        events = chrome_trace_events([_series_record(), _series_record()])
        assert validate_chrome_trace(events) == []
        pids = {e["pid"] for e in events if e.get("cat") == "batch"}
        assert pids == {2, 3}
        flow_ids = {e["id"] for e in events if e["ph"] == "s"}
        assert flow_ids == {"0.0", "0.1", "0.2", "1.0", "1.1", "1.2"}

    def test_empty_series_exports_metadata_only(self):
        s = ServeTimeSeries("empty", groups=1, window_cycles=10)
        s.finalize()
        events = chrome_trace_events([s.to_dict()])
        assert validate_chrome_trace(events) == []
        assert all(e["ph"] == "M" for e in events)


class TestExportAndValidate:
    def test_export_writes_perfetto_json(self, tmp_path):
        out = tmp_path / "trace.perfetto.json"
        path = export_chrome_trace([_series_record(), _span("run", 0.0, 0.5)], out)
        payload = json.loads(path.read_text())
        assert isinstance(payload["traceEvents"], list)
        assert payload["otherData"]["producer"] == "repro.obs.chrometrace"
        assert validate_chrome_trace(payload["traceEvents"]) == []

    def test_empty_records(self):
        assert chrome_trace_events([]) == []
        assert validate_chrome_trace([]) == []

    def test_validator_catches_unmatched_end(self):
        bad = [{"ph": "E", "pid": 1, "tid": 1, "ts": 5}]
        assert any("no open B" in p for p in validate_chrome_trace(bad))

    def test_validator_catches_unclosed_begin(self):
        bad = [{"ph": "B", "pid": 1, "tid": 1, "ts": 0, "name": "x"}]
        assert any("unclosed B" in p for p in validate_chrome_trace(bad))

    def test_validator_catches_time_regression(self):
        bad = [
            {"ph": "B", "pid": 1, "tid": 1, "ts": 10, "name": "x"},
            {"ph": "E", "pid": 1, "tid": 1, "ts": 20},
            {"ph": "B", "pid": 1, "tid": 1, "ts": 5, "name": "y"},
            {"ph": "E", "pid": 1, "tid": 1, "ts": 6},
        ]
        assert any("<" in p for p in validate_chrome_trace(bad))

    def test_validator_catches_dangling_flow(self):
        bad = [{"ph": "s", "pid": 1, "tid": 1, "ts": 0, "cat": "c", "id": "1"}]
        assert any("never finished" in p for p in validate_chrome_trace(bad))

    def test_validator_catches_async_mismatch(self):
        bad = [{"ph": "e", "pid": 1, "tid": 1, "ts": 0, "cat": "c", "id": "1"}]
        assert any("without b" in p for p in validate_chrome_trace(bad))
