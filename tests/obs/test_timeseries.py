"""Unit tests for the sim-time serving time-series aggregator."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import percentile
from repro.obs.timeseries import (
    Reservoir,
    ServeTimeSeries,
    adopt_timeseries,
    clear_timeseries,
    disable_timeseries,
    enable_timeseries,
    global_timeseries,
    start_series,
    timeseries_config,
    timeseries_enabled,
)
from repro.serve.slo import percentile as slo_percentile


def _feed(series, requests):
    """Drive a series with (arrival, start, finish, replica) request tuples.

    Events are delivered in non-decreasing cycle order — arrival at its
    arrival cycle, dispatch at its start, completion at its finish — exactly
    the discipline the serve event loop guarantees.
    """
    events = []
    for rid, (arrival, start, finish, replica) in enumerate(requests):
        events.append((arrival, 0, rid, (arrival,)))
        events.append((start, 1, rid, (start, replica, finish - start, 1)))
        events.append((finish, 2, rid, (rid, arrival, start, finish, replica, 1)))
    for _cycle, kind, _rid, payload in sorted(events):
        (series.on_arrival, series.on_dispatch, series.on_completion)[kind](*payload)
    series.finalize()


class TestReservoir:
    def test_exact_until_capacity(self):
        r = Reservoir(10)
        for v in range(10):
            r.add(v)
        assert r.exact
        assert sorted(r.samples) == list(range(10))
        assert r.quantile(50) == percentile(list(range(10)), 50)
        r.add(10)
        assert not r.exact
        assert len(r.samples) == 10

    def test_deterministic_for_identical_streams(self):
        a, b = Reservoir(5, seed=3), Reservoir(5, seed=3)
        for v in range(100):
            a.add(v)
            b.add(v)
        assert a.samples == b.samples

    def test_seed_changes_sample(self):
        a, b = Reservoir(5, seed=1), Reservoir(5, seed=2)
        for v in range(200):
            a.add(v)
            b.add(v)
        assert a.samples != b.samples

    def test_absorb_is_deterministic_and_counts(self):
        def build():
            a, b = Reservoir(4, seed=1), Reservoir(4, seed=2)
            for v in range(10):
                a.add(v)
                b.add(v + 100)
            a.absorb(b)
            return a

        one, two = build(), build()
        assert one.samples == two.samples
        assert one.count == 20
        assert len(one.samples) == 4

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            Reservoir(0)


class TestWindowing:
    def test_events_land_in_their_windows(self):
        s = ServeTimeSeries("t", groups=2, window_cycles=100)
        _feed(s, [(0, 0, 50, 0), (120, 120, 180, 1), (130, 140, 260, 0)])
        d = s.to_dict()
        ws = d["windows"]
        assert [w["start"] for w in ws] == [0, 100, 200]
        assert [w["arrivals"] for w in ws] == [1, 2, 0]
        assert [w["completions"] for w in ws] == [1, 1, 1]
        assert d["cumulative"]["arrivals"] == 3
        assert d["cumulative"]["requests"] == 3

    def test_zero_width_window_rejected(self):
        with pytest.raises(ValueError, match="window_cycles"):
            ServeTimeSeries("t", groups=1, window_cycles=0)
        with pytest.raises(ValueError, match="max_windows"):
            ServeTimeSeries("t", groups=1, max_windows=3)

    def test_busy_cycles_split_across_windows(self):
        s = ServeTimeSeries("t", groups=1, window_cycles=100)
        # One batch spanning cycles 50..250: 50 busy in w0, 100 in w1, 50 in w2
        # (windows anchor at the first event cycle, 0 here).
        s.on_arrival(0)
        s.on_dispatch(50, 0, 200, 1)
        s.on_completion(0, 0, 50, 250, 0, 1)
        s.finalize()
        ws = s.to_dict()["windows"]
        assert [w["busy_cycles"].get("0", 0) for w in ws] == [50, 100, 50]
        assert [w["utilization"] for w in ws] == [0.5, 1.0, 0.5]

    def test_coalescing_keeps_full_coverage(self):
        s = ServeTimeSeries("t", groups=1, window_cycles=10, max_windows=4)
        requests = [(i * 10, i * 10, i * 10 + 5, 0) for i in range(32)]
        _feed(s, requests)
        d = s.to_dict()
        assert d["coalesced"] >= 1
        assert d["window_cycles"] > 10
        assert len(d["windows"]) <= 4 + 1  # retained + the final partial
        # Coverage is contiguous from the origin and nothing was dropped.
        assert d["windows"][0]["start"] == 0
        for prev, cur in zip(d["windows"], d["windows"][1:]):
            assert cur["start"] == prev["end"]
        assert sum(w["completions"] for w in d["windows"]) == 32
        assert sum(w["arrivals"] for w in d["windows"]) == 32

    def test_huge_cycle_jump_is_bounded(self):
        s = ServeTimeSeries("t", groups=1, window_cycles=1, max_windows=4)
        s.on_arrival(0)
        s.on_dispatch(0, 0, 10, 1)
        s.on_completion(0, 0, 0, 10, 0, 1)
        s.on_arrival(10**9)  # a billion-cycle gap must not loop a billion times
        s.finalize()
        d = s.to_dict()
        assert sum(w["arrivals"] for w in d["windows"]) == 2

    def test_empty_run_exports_cleanly(self):
        s = ServeTimeSeries("empty", groups=4, window_cycles=100)
        s.finalize()
        d = s.to_dict()
        assert d["windows"] == []
        assert d["requests"] == []
        cum = d["cumulative"]
        assert cum["requests"] == 0
        assert cum["makespan"] == 0
        assert cum["utilization"] == 0.0
        assert cum["p99"] == 0

    def test_small_reservoir_still_counts_everything(self):
        s = ServeTimeSeries(
            "t", groups=1, window_cycles=10_000,
            window_reservoir=8, cumulative_reservoir=8,
        )
        requests = [(i, i, i + 1 + i % 7, 0) for i in range(100)]
        _feed(s, requests)
        d = s.to_dict()
        cum = d["cumulative"]
        assert cum["requests"] == 100
        assert not cum["percentiles_exact"]
        w = d["windows"][0]
        assert w["latency_count"] == 100
        assert w["latency_samples"] == 8
        # Sampled percentiles still come from genuinely observed latencies.
        observed = {1 + i % 7 for i in range(100)}
        assert w["p99"] in observed and cum["p99"] in observed

    def test_request_cap_drops_tail(self):
        s = ServeTimeSeries("t", groups=1, window_cycles=100, request_cap=3)
        _feed(s, [(i, i, i + 1, 0) for i in range(5)])
        d = s.to_dict()
        assert d["requests_recorded"] == 3
        assert d["requests_dropped"] == 2
        assert d["cumulative"]["requests"] == 5

    def test_slo_burn_rate(self):
        s = ServeTimeSeries(
            "t", groups=1, window_cycles=1000, slo_cycles=10, slo_budget=0.1
        )
        # 4 requests, 2 violate (latency 20 > 10): rate 0.5, burn 5.0.
        _feed(s, [(0, 0, 5, 0), (1, 1, 21, 0), (2, 2, 22, 0), (3, 3, 9, 0)])
        d = s.to_dict()
        assert d["cumulative"]["violations"] == 2
        assert d["windows"][0]["slo_burn_rate"] == 5.0


class TestGlobalState:
    def test_disabled_by_default(self):
        assert not timeseries_enabled()

    def test_enable_start_collect_clear(self):
        enable_timeseries(window_cycles=64)
        assert timeseries_enabled()
        assert timeseries_config() == {"window_cycles": 64}
        series = start_series("run", groups=2)
        series.on_arrival(0)
        series.on_dispatch(0, 0, 10, 1)
        series.on_completion(0, 0, 0, 10, 0, 1)
        records = global_timeseries()
        assert len(records) == 1
        assert records[0]["label"] == "run"
        assert records[0]["window_cycles"] == 64
        clear_timeseries()
        assert global_timeseries() == []
        disable_timeseries()

    def test_env_fallbacks(self, monkeypatch):
        monkeypatch.setenv("REPRO_TS_WINDOW", "128")
        monkeypatch.setenv("REPRO_TS_MAX_WINDOWS", "16")
        enable_timeseries()
        cfg = timeseries_config()
        assert cfg["window_cycles"] == 128
        assert cfg["max_windows"] == 16

    def test_adopted_records_keep_order(self):
        enable_timeseries()
        start_series("local", groups=1)
        adopt_timeseries({"type": "timeseries", "label": "worker", "windows": []})
        labels = [r["label"] for r in global_timeseries()]
        assert labels == ["local", "worker"]


class TestPercentileConvention:
    """serve.slo, obs.metrics, and exact reservoirs must agree digit for digit."""

    @given(
        values=st.lists(st.integers(0, 10**6), min_size=1, max_size=200),
        pct=st.sampled_from([1, 25, 50, 75, 90, 95, 99, 100]),
    )
    @settings(max_examples=100, deadline=None)
    def test_cross_module_lockstep(self, values, pct):
        expected = percentile(values, pct)
        assert slo_percentile(values, pct) == expected
        r = Reservoir(len(values), seed=0)
        for v in values:
            r.add(v)
        assert r.exact
        assert r.quantile(pct) == expected

    @given(values=st.lists(st.integers(0, 1000), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_nearest_rank_is_an_observed_value(self, values):
        for pct in (50, 95, 99):
            assert percentile(values, pct) in values


def test_window_percentiles_match_shared_convention():
    """Per-window p50/p95/p99 equal nearest-rank over that window's latencies."""
    rng = random.Random(5)
    s = ServeTimeSeries("t", groups=1, window_cycles=1000)
    lats = [rng.randrange(1, 500) for _ in range(80)]
    _feed(s, [(i, i, i + lat, 0) for i, lat in enumerate(lats)])
    w = s.to_dict()["windows"][0]
    in_window = [lat for i, lat in enumerate(lats) if i + lat < 1000]
    assert w["p50"] == int(percentile(in_window, 50))
    assert w["p99"] == int(percentile(in_window, 99))
