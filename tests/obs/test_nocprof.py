"""NoC profiling: exact route accumulation, engine agreement, global state."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.models import get_spec
from repro.noc import (
    Mesh2D,
    NoCConfig,
    NoCSimulator,
    ReferenceNoCSimulator,
    TrafficMatrix,
    uniform_random_traffic,
)
from repro.noc.topology import EAST, LOCAL, SOUTH
from repro.obs import NoCProfile
from repro.partition import build_traditional_plan
from repro.sim.engine import InferenceSimulator, SimConfig


def drain(engine_cls, mesh, traffic, config, profile=None):
    sim = engine_cls(mesh, config, profile=profile)
    packets = traffic.to_packets(config)
    sim.inject(packets)
    return sim.run(), packets


def single_flow_traffic(src: int, dst: int, num_bytes: int = 4096) -> TrafficMatrix:
    m = np.zeros((16, 16), dtype=np.int64)
    m[src, dst] = num_bytes
    return TrafficMatrix(m, label=f"{src}->{dst}")


class TestRouteAccumulation:
    def test_single_hop_east(self):
        config = NoCConfig()
        profile = NoCProfile(4, 4)
        stats, packets = drain(
            NoCSimulator, Mesh2D(4, 4), single_flow_traffic(5, 6), config, profile
        )
        flits = sum(p.num_flits for p in packets)
        assert profile.link_flits[5, EAST] == flits
        assert profile.link_flits[6, LOCAL] == flits
        assert profile.router_flits[5] == flits
        assert profile.router_flits[6] == flits
        assert profile.link_flits.sum() == 2 * flits
        assert profile.total_flit_hops == stats.flit_hops == flits
        assert profile.cycles == stats.cycles
        assert profile.runs == 1

    def test_xy_route_two_hops(self):
        # 0 (0,0) -> 5 (1,1): X first (east to node 1), then Y (south to 5).
        config = NoCConfig()
        profile = NoCProfile(4, 4)
        stats, packets = drain(
            NoCSimulator, Mesh2D(4, 4), single_flow_traffic(0, 5), config, profile
        )
        flits = sum(p.num_flits for p in packets)
        assert profile.link_flits[0, EAST] == flits
        assert profile.link_flits[1, SOUTH] == flits
        assert profile.link_flits[5, LOCAL] == flits
        assert list(np.flatnonzero(profile.router_flits)) == [0, 1, 5]
        assert profile.total_flit_hops == stats.flit_hops == 2 * flits

    def test_engines_accumulate_identical_profiles(self):
        config = NoCConfig()
        traffic = uniform_random_traffic(16, 40_000, seed=11)
        fast_profile = NoCProfile(4, 4)
        ref_profile = NoCProfile(4, 4)
        fast, _ = drain(NoCSimulator, Mesh2D(4, 4), traffic, config, fast_profile)
        ref, _ = drain(
            ReferenceNoCSimulator, Mesh2D(4, 4), traffic, config, ref_profile
        )
        assert fast == ref
        assert np.array_equal(fast_profile.link_flits, ref_profile.link_flits)
        assert np.array_equal(fast_profile.router_flits, ref_profile.router_flits)
        assert fast_profile.cycles == ref_profile.cycles

    @pytest.mark.parametrize(
        "engine_cls", [NoCSimulator, ReferenceNoCSimulator], ids=["event", "reference"]
    )
    def test_profiling_does_not_change_stats(self, engine_cls):
        config = NoCConfig()
        traffic = uniform_random_traffic(16, 40_000, seed=3)
        plain, _ = drain(engine_cls, Mesh2D(4, 4), traffic, config)
        profiled, _ = drain(
            engine_cls, Mesh2D(4, 4), traffic, config, NoCProfile(4, 4)
        )
        assert plain == profiled

    def test_profile_rejects_wrong_mesh_shape(self):
        config = NoCConfig()
        with pytest.raises(ValueError, match="mesh"):
            drain(
                NoCSimulator, Mesh2D(4, 4), single_flow_traffic(5, 6), config,
                NoCProfile(8, 8),
            )


class TestProfileData:
    def test_merge_accumulates(self):
        a, b = NoCProfile(2, 2), NoCProfile(2, 2)
        a.link_flits[1, EAST] = 5
        a.cycles, a.runs = 10, 1
        b.link_flits[1, EAST] = 7
        b.router_flits[0] = 3
        b.cycles, b.runs = 20, 2
        a.merge(b)
        assert a.link_flits[1, EAST] == 12
        assert a.router_flits[0] == 3
        assert (a.cycles, a.runs) == (30, 3)

    def test_merge_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="merge"):
            NoCProfile(2, 2).merge(NoCProfile(4, 1))

    def test_utilization_and_occupancy(self):
        p = NoCProfile(2, 2)
        p.link_flits[0, EAST] = 50
        p.router_flits[3] = 100
        p.cycles = 100
        assert p.link_utilization()[0, EAST] == 0.5
        occ = p.router_occupancy()
        assert occ.shape == (2, 2)
        assert occ[1, 1] == 1.0

    def test_zero_cycles_yields_zero_utilization(self):
        p = NoCProfile(2, 2)
        p.link_flits[0, EAST] = 9
        assert not p.link_utilization().any()

    def test_dict_round_trip(self):
        p = NoCProfile(2, 3)
        p.link_flits[4, SOUTH] = 8
        p.router_flits[4] = 8
        p.cycles, p.runs = 42, 2
        q = NoCProfile.from_dict(p.to_dict())
        assert (q.width, q.height, q.cycles, q.runs) == (2, 3, 42, 2)
        assert np.array_equal(q.link_flits, p.link_flits)
        assert np.array_equal(q.router_flits, p.router_flits)

    def test_from_dict_rejects_mismatched_arrays(self):
        bad = NoCProfile(2, 2).to_dict()
        bad["mesh"] = [4, 4]
        with pytest.raises(ValueError):
            NoCProfile.from_dict(bad)


class TestGlobalState:
    def test_enable_disable(self):
        assert not obs.noc_profiling_enabled()
        obs.enable_noc_profiling()
        assert obs.noc_profiling_enabled()
        obs.disable_noc_profiling()
        assert not obs.noc_profiling_enabled()

    def test_global_profile_is_per_shape_singleton(self):
        p = obs.nocprof.global_profile(4, 4)
        assert obs.nocprof.global_profile(4, 4) is p
        assert obs.nocprof.global_profile(8, 8) is not p

    def test_global_profiles_largest_first(self):
        obs.nocprof.global_profile(2, 2)
        obs.nocprof.global_profile(8, 8)
        obs.nocprof.global_profile(4, 4)
        sizes = [(p.width, p.height) for p in obs.nocprof.global_profiles()]
        assert sizes == [(8, 8), (4, 4), (2, 2)]


class TestEngineIntegration:
    @pytest.fixture
    def cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        return tmp_path

    def test_profiled_run_bypasses_memo_but_matches(self, cache_dir, chip16):
        plan = build_traditional_plan(get_spec("lenet"), 16)
        sim = InferenceSimulator(chip16, SimConfig())
        cold = sim.simulate(plan)

        obs.enable_noc_profiling()
        profiled = sim.simulate(plan)
        # Warm entries exist, but profiling needs real drains: all misses.
        assert profiled.drain_memo_hits == 0
        assert profiled.drain_memo_misses == cold.drain_memo_misses
        mesh = chip16.mesh
        profile = obs.nocprof.global_profile(mesh.width, mesh.height)
        assert profile.runs == cold.drain_memo_misses
        assert profile.total_flit_hops > 0
        # ... and the numbers still match the memoized cold run exactly.
        assert [(t.layer_name, t.comm_cycles, t.flit_hops) for t in cold.layers] == [
            (t.layer_name, t.comm_cycles, t.flit_hops) for t in profiled.layers
        ]

        obs.disable_noc_profiling()
        warm = sim.simulate(plan)
        assert warm.drain_memo_hits == cold.drain_memo_misses
        assert profile.runs == cold.drain_memo_misses  # untouched when disabled
