"""Tracing spans: nesting, attributes, JSONL round-trips, and the off path."""

from __future__ import annotations

import threading

import pytest

from repro import obs
from repro.obs.trace import _NOOP


class TestDisabled:
    def test_off_by_default_returns_shared_noop(self):
        assert not obs.tracing_enabled()
        sp = obs.span("anything", layer=3)
        assert sp is _NOOP
        assert obs.span("other") is sp

    def test_noop_span_is_inert(self):
        with obs.span("quiet") as sp:
            sp.set(result=42)
        assert obs.get_collector().records() == []

    def test_disable_stops_collection(self):
        obs.enable_tracing()
        with obs.span("kept"):
            pass
        obs.disable_tracing()
        with obs.span("dropped"):
            pass
        names = [r["name"] for r in obs.get_collector().records()]
        assert names == ["kept"]


class TestNesting:
    def test_child_points_at_parent(self):
        obs.enable_tracing()
        with obs.span("outer") as outer:
            with obs.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_siblings_share_a_parent(self):
        obs.enable_tracing()
        with obs.span("outer") as outer:
            with obs.span("a") as a:
                pass
            with obs.span("b") as b:
                pass
        assert a.parent_id == outer.span_id
        assert b.parent_id == outer.span_id
        assert a.span_id != b.span_id

    def test_children_recorded_before_parents(self):
        obs.enable_tracing()
        with obs.span("experiment"):
            with obs.span("layer"):
                with obs.span("drain"):
                    pass
        names = [r["name"] for r in obs.get_collector().records()]
        assert names == ["drain", "layer", "experiment"]

    def test_durations_nest(self):
        obs.enable_tracing()
        with obs.span("outer") as outer:
            with obs.span("inner") as inner:
                pass
        assert 0 <= inner.dur_s <= outer.dur_s


class TestAttributes:
    def test_attrs_from_open_and_set(self):
        obs.enable_tracing()
        with obs.span("work", layer="conv1") as sp:
            sp.set(cycles=99, mode="cycle")
        (record,) = obs.get_collector().records()
        assert record["attrs"] == {"layer": "conv1", "cycles": 99, "mode": "cycle"}

    def test_exception_annotates_and_propagates(self):
        obs.enable_tracing()
        with pytest.raises(ValueError):
            with obs.span("doomed"):
                raise ValueError("nope")
        (record,) = obs.get_collector().records()
        assert record["attrs"]["error"] == "ValueError"


class TestCollector:
    def test_enable_with_custom_collector(self):
        mine = obs.TraceCollector()
        assert obs.enable_tracing(mine) is mine
        with obs.span("here"):
            pass
        assert [r["name"] for r in mine.records()] == ["here"]
        assert obs.get_collector() is mine

    def test_clear(self):
        obs.enable_tracing()
        with obs.span("gone"):
            pass
        obs.get_collector().clear()
        assert obs.get_collector().records() == []

    def test_threads_get_independent_stacks(self):
        obs.enable_tracing()
        done = threading.Event()

        def worker():
            with obs.span("worker.span"):
                pass
            done.set()

        with obs.span("main.span"):
            t = threading.Thread(target=worker, name="obs-worker")
            t.start()
            t.join()
        assert done.is_set()
        by_name = {r["name"]: r for r in obs.get_collector().records()}
        # The worker's span is a root on its own thread, not a child of main.
        assert by_name["worker.span"]["parent"] is None
        assert by_name["worker.span"]["thread"] == "obs-worker"
        assert by_name["main.span"]["parent"] is None


class TestJsonl:
    def test_round_trip(self, tmp_path):
        obs.enable_tracing()
        with obs.span("outer", model="lenet"):
            with obs.span("inner") as sp:
                sp.set(cycles=7)
        path = obs.get_collector().export_jsonl(tmp_path / "trace.jsonl")
        assert obs.read_jsonl(path) == obs.get_collector().records()

    def test_read_skips_blank_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"type": "span", "name": "a"}\n\n{"type": "metrics"}\n')
        records = obs.read_jsonl(path)
        assert [r["type"] for r in records] == ["span", "metrics"]

    def test_export_trace_bundles_metrics_and_profiles(self, tmp_path):
        obs.enable_tracing()
        obs.enable_noc_profiling()
        with obs.span("run"):
            pass
        obs.METRICS.reset()
        obs.METRICS.inc("probe.counter", 3)
        profile = obs.nocprof.global_profile(4, 4)
        profile.cycles = 10
        profile.runs = 1
        records = obs.read_jsonl(obs.export_trace(tmp_path / "bundle.jsonl"))
        types = [r["type"] for r in records]
        assert types == ["span", "metrics", "noc_profile"]
        assert records[1]["snapshot"]["counters"]["probe.counter"] == 3
        assert records[2]["mesh"] == [4, 4]
