"""Observability tests share process-global state; restore it around each test."""

from __future__ import annotations

import pytest

from repro import obs


def _reset() -> None:
    obs.disable_tracing()
    obs.get_collector().clear()
    obs.nocprof.disable_noc_profiling()
    obs.nocprof.clear_profiles()
    obs.disable_timeseries()
    obs.clear_timeseries()


@pytest.fixture(autouse=True)
def clean_obs_state():
    _reset()
    yield
    _reset()
