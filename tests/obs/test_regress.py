"""Tests for the benchmark regression watchdog and its CLI."""

import json
import sys
from pathlib import Path

import pytest

from repro.obs.regress import (
    BenchSpec,
    ToleranceRule,
    check_bench,
    load_tolerances,
    lookup_path,
    render_findings,
    same_host_regime,
)

_ROOT = Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(_ROOT / "scripts"))

from check_bench import main as check_bench_main  # noqa: E402


def _spec():
    return BenchSpec(
        name="BENCH_serve",
        rules=[
            ToleranceRule("cases.lenet.makespan_cycles", "equal"),
            ToleranceRule("cases.lenet.speedup", "min_ratio", 0.7, host_sensitive=True),
            ToleranceRule("overhead_pct", "max", 2.0, host_sensitive=True),
        ],
    )


def _report(makespan=1000, speedup=2.0, overhead=1.0, cpu=1):
    return {
        "host": {"cpu_count": cpu},
        "cases": {"lenet": {"makespan_cycles": makespan, "speedup": speedup}},
        "overhead_pct": overhead,
    }


class TestRules:
    def test_identical_reports_all_ok(self):
        findings = check_bench(_spec(), _report(), _report(), current_cpu=1)
        assert [f.status for f in findings] == ["ok", "ok", "ok"]
        assert not any(f.failed for f in findings)

    def test_equal_rule_flags_any_drift(self):
        findings = check_bench(
            _spec(), _report(), _report(makespan=1001), current_cpu=1
        )
        assert findings[0].status == "regressed"
        assert findings[0].failed

    def test_min_ratio_floor(self):
        ok = check_bench(_spec(), _report(), _report(speedup=1.5), current_cpu=1)
        assert ok[1].status == "ok"  # 1.5/2.0 = 0.75 >= 0.7
        bad = check_bench(_spec(), _report(), _report(speedup=1.0), current_cpu=1)
        assert bad[1].status == "regressed"  # 0.5 < 0.7

    def test_max_absolute_bound(self):
        bad = check_bench(_spec(), _report(), _report(overhead=3.5), current_cpu=1)
        assert bad[2].status == "regressed"

    def test_missing_fresh_metric(self):
        fresh = _report()
        del fresh["cases"]["lenet"]["makespan_cycles"]
        findings = check_bench(_spec(), _report(), fresh, current_cpu=1)
        assert findings[0].status == "missing"
        assert findings[0].failed

    def test_metric_new_in_fresh_is_skipped(self):
        base = _report()
        del base["overhead_pct"]
        findings = check_bench(_spec(), base, _report(), current_cpu=1)
        assert findings[2].status == "skipped"

    def test_host_sensitive_gates_skip_across_regimes(self):
        # Baseline from a multi-core runner, checked on one core: wall-clock
        # gates skip, the deterministic equal gate still applies.
        findings = check_bench(
            _spec(), _report(cpu=16), _report(speedup=0.1, overhead=99.0),
            current_cpu=1,
        )
        assert [f.status for f in findings] == ["ok", "skipped", "skipped"]

    def test_unknown_baseline_host_is_different_regime(self):
        base = _report()
        del base["host"]
        assert not same_host_regime(base, current_cpu=1)
        findings = check_bench(_spec(), base, _report(overhead=99.0), current_cpu=1)
        assert findings[2].status == "skipped"

    def test_legacy_top_level_cpu_count(self):
        base = _report()
        del base["host"]
        base["cpu_count"] = 1
        assert same_host_regime(base, current_cpu=1)
        assert not same_host_regime(base, current_cpu=8)

    def test_none_reports_skip_whole_bench(self):
        findings = check_bench(_spec(), None, _report())
        assert len(findings) == 1 and findings[0].status == "skipped"
        findings = check_bench(_spec(), _report(), None)
        assert len(findings) == 1 and findings[0].status == "skipped"

    def test_baseline_zero_ratio(self):
        spec = BenchSpec("B", [ToleranceRule("x", "min_ratio", 0.5)])
        host = {"host": {"cpu_count": 1}}
        ok = check_bench(spec, {"x": 0, **host}, {"x": 0}, current_cpu=1)
        assert ok[0].status == "ok"
        bad = check_bench(spec, {"x": 0, **host}, {"x": 5}, current_cpu=1)
        assert bad[0].status == "regressed"

    def test_ratio_on_non_numeric_regresses(self):
        spec = BenchSpec("B", [ToleranceRule("x", "min_ratio", 0.5)])
        findings = check_bench(
            spec, {"x": "fast", "host": {"cpu_count": 1}}, {"x": "slow"},
            current_cpu=1,
        )
        assert findings[0].status == "regressed"


class TestRuleValidation:
    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="unknown rule"):
            ToleranceRule("x", "fuzzy")

    def test_value_required_for_bounds(self):
        with pytest.raises(ValueError, match="needs a value"):
            ToleranceRule("x", "min_ratio")

    def test_lookup_path_missing_segments(self):
        from repro.obs.regress import _MISSING

        assert lookup_path({"a": {"b": 1}}, "a.b") == 1
        assert lookup_path({"a": {"b": 1}}, "a.c") is _MISSING
        assert lookup_path({"a": 1}, "a.b") is _MISSING


class TestRender:
    def test_render_summarizes_counts(self):
        findings = check_bench(
            _spec(), _report(), _report(makespan=2, overhead=9.0), current_cpu=1
        )
        text = render_findings(findings)
        assert "[FAIL]" in text and "[ ok ]" in text
        assert "2 failed" in text


class TestCheckBenchCli:
    def _write_env(self, tmp_path, baseline, fresh):
        tolerances = {
            "BENCH_serve": [
                {"path": "cases.lenet.makespan_cycles", "rule": "equal"},
                {
                    "path": "overhead_pct", "rule": "max", "value": 2.0,
                    "host_sensitive": True,
                },
            ]
        }
        (tmp_path / "tolerances.json").write_text(json.dumps(tolerances))
        base_dir = tmp_path / "base"
        fresh_dir = tmp_path / "fresh"
        base_dir.mkdir()
        fresh_dir.mkdir()
        (base_dir / "BENCH_serve.json").write_text(json.dumps(baseline))
        (fresh_dir / "BENCH_serve.json").write_text(json.dumps(fresh))
        return [
            "--tolerances", str(tmp_path / "tolerances.json"),
            "--baseline-dir", str(base_dir),
            "--fresh-dir", str(fresh_dir),
        ]

    def test_clean_run_exits_zero(self, tmp_path, capsys):
        argv = self._write_env(tmp_path, _report(), _report())
        assert check_bench_main(argv) == 0
        assert "0 failed" in capsys.readouterr().out

    def test_synthetic_regression_exits_nonzero(self, tmp_path, capsys):
        argv = self._write_env(tmp_path, _report(), _report(makespan=999))
        assert check_bench_main(argv) == 1
        assert "[FAIL]" in capsys.readouterr().out

    def test_report_only_never_fails(self, tmp_path, capsys):
        argv = self._write_env(tmp_path, _report(), _report(makespan=999))
        assert check_bench_main(argv + ["--report-only"]) == 0
        assert "[FAIL]" in capsys.readouterr().out

    def test_unknown_bench_selection_errors(self, tmp_path):
        argv = self._write_env(tmp_path, _report(), _report())
        with pytest.raises(SystemExit):
            check_bench_main(argv + ["--bench", "BENCH_nope"])

    def test_checked_in_baselines_pass_as_their_own_fresh(self, capsys):
        # The real tolerance file applied to the repo's own reports must be
        # clean: baseline == fresh, so only host-regime skips are allowed.
        argv = [
            "--tolerances", str(_ROOT / "benchmarks" / "tolerances.json"),
            "--baseline-dir", str(_ROOT),
            "--fresh-dir", str(_ROOT),
        ]
        assert check_bench_main(argv) == 0
        assert "0 failed" in capsys.readouterr().out

    def test_load_real_tolerance_file(self):
        specs = load_tolerances(_ROOT / "benchmarks" / "tolerances.json")
        names = {s.name for s in specs}
        assert names == {
            "BENCH_experiments", "BENCH_mcm", "BENCH_noc", "BENCH_search",
            "BENCH_serve", "BENCH_train",
        }
        assert all(s.rules for s in specs)
