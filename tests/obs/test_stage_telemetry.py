"""Per-stage pipeline telemetry: time-series keys and Perfetto chip tracks."""

from repro import obs
from repro.models import lenet_spec
from repro.obs.chrometrace import chrome_trace_events, validate_chrome_trace
from repro.serve import PoissonWorkload, build_mcm_cluster, build_spec_cluster
from repro.serve.scheduler import FIFOScheduler
from repro.serve.simulator import ServeSimulator


def _run(cluster, requests=20, rate=10.0):
    obs.enable_timeseries(window_cycles=50_000)
    workload = PoissonWorkload(rate, requests, seed=5, mix={"lenet": 1.0})
    ServeSimulator(cluster, FIFOScheduler(), workload).run()
    (record,) = obs.global_timeseries()
    return record


class TestStageSeriesKeys:
    def test_pipelined_run_exports_stage_series(self):
        cluster = build_mcm_cluster(lenet_spec(), 4, cores_per_chip=2, stages=2)
        record = _run(cluster)
        assert record["stages"] == 2
        assert record["stage_intervals"]
        # Every interval is (start, end, replica, stage) within bounds.
        for start, end, replica, stage in record["stage_intervals"]:
            assert 0 <= start < end
            assert 0 <= replica < cluster.pipelines
            assert 0 <= stage < 2

        cumulative = record["cumulative"]
        for key in ("stage_busy_cycles", "stage_occupancy", "stage_bubble_fraction"):
            assert set(cumulative[key]) == {"0", "1"}
        # The bottleneck stage has zero bubble; others wait on it.
        bubbles = cumulative["stage_bubble_fraction"]
        assert min(bubbles.values()) == 0.0
        assert all(0.0 <= b < 1.0 for b in bubbles.values())
        # Per-stage busy is consistent with the recorded intervals.
        from_intervals = {"0": 0, "1": 0}
        for start, end, _, stage in record["stage_intervals"]:
            from_intervals[str(stage)] += end - start
        assert cumulative["stage_busy_cycles"] == from_intervals

    def test_plain_run_has_no_stage_keys(self):
        """The single-chip export is unchanged — stage keys never appear."""
        cluster = build_spec_cluster(lenet_spec(), 8, 4)
        record = _run(cluster)
        assert "stages" not in record
        assert "stage_intervals" not in record
        for key in ("stage_busy_cycles", "stage_occupancy", "stage_bubble_fraction"):
            assert key not in record["cumulative"]


class TestPerfettoChipTracks:
    def test_stage_tracks_per_pipeline_chip(self):
        cluster = build_mcm_cluster(lenet_spec(), 4, cores_per_chip=2, stages=2)
        record = _run(cluster)
        events = chrome_trace_events([record])
        assert validate_chrome_trace(events) == []

        slices = [e for e in events if e.get("cat") == "stage"]
        assert slices
        assert all(e["tid"] >= 20_000 for e in slices)
        assert {e["name"] for e in slices} == {"stage 0", "stage 1"}
        chip_labels = {
            e["args"]["name"]
            for e in events
            if e.get("name") == "thread_name"
            and e["args"]["name"].startswith("pipeline ")
        }
        assert {"pipeline 0 chip 0", "pipeline 0 chip 1"} <= chip_labels
        # One track per (pipeline, chip): 2 pipelines x 2 chips.
        assert len({e["tid"] for e in slices}) == 4

    def test_plain_trace_has_no_stage_tracks(self):
        cluster = build_spec_cluster(lenet_spec(), 8, 4)
        record = _run(cluster)
        events = chrome_trace_events([record])
        assert validate_chrome_trace(events) == []
        assert not [e for e in events if e.get("cat") == "stage"]
