"""Metrics registry: counters/gauges/histograms, labels, and determinism."""

from __future__ import annotations

import pytest

from repro.obs import METRICS, MetricsRegistry
from repro.models import get_spec
from repro.partition import build_traditional_plan
from repro.sim.engine import InferenceSimulator, SimConfig


@pytest.fixture
def reg() -> MetricsRegistry:
    return MetricsRegistry()


class TestCounters:
    def test_inc_defaults_to_one(self, reg):
        reg.inc("hits")
        reg.inc("hits")
        assert reg.counter("hits") == 2

    def test_inc_with_value(self, reg):
        reg.inc("cycles", 128)
        reg.inc("cycles", 72)
        assert reg.counter("cycles") == 200

    def test_unknown_counter_reads_zero(self, reg):
        assert reg.counter("never.touched") == 0

    def test_inc_zero_registers_series(self, reg):
        reg.inc("cache.hit", 0)
        assert "cache.hit" in reg.snapshot()["counters"]
        assert reg.counter("cache.hit") == 0

    def test_labels_are_independent_series(self, reg):
        reg.inc("noc.runs", engine="event")
        reg.inc("noc.runs", 2, engine="reference")
        assert reg.counter("noc.runs", engine="event") == 1
        assert reg.counter("noc.runs", engine="reference") == 2
        assert reg.counter("noc.runs") == 0

    def test_label_keys_render_sorted(self, reg):
        reg.inc("m", b=2, a=1)
        reg.inc("m", a=1, b=2)
        assert reg.snapshot()["counters"] == {"m{a=1,b=2}": 2}


class TestGaugesAndHistograms:
    def test_gauge_keeps_last_value(self, reg):
        reg.set_gauge("train.last_loss", 2.5)
        reg.set_gauge("train.last_loss", 1.25)
        assert reg.snapshot()["gauges"] == {"train.last_loss": 1.25}

    def test_histogram_stats(self, reg):
        for v in (1.0, 4.0, 7.0):
            reg.observe("train.epoch_loss", v)
        h = reg.snapshot()["histograms"]["train.epoch_loss"]
        assert h == {"count": 3, "total": 12.0, "mean": 4.0, "min": 1.0, "max": 7.0}


class TestSnapshotAndReset:
    def test_snapshot_keys_sorted(self, reg):
        reg.inc("zeta")
        reg.inc("alpha")
        assert list(reg.snapshot()["counters"]) == ["alpha", "zeta"]

    def test_reset_clears_everything(self, reg):
        reg.inc("c")
        reg.set_gauge("g", 1)
        reg.observe("h", 2)
        reg.reset()
        snap = reg.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_render_includes_all_sections(self, reg):
        reg.inc("noc.flits", 1000)
        reg.set_gauge("loss", 0.5)
        reg.observe("epoch", 3.0)
        text = reg.render()
        assert "counters:" in text and "noc.flits" in text and "1,000" in text
        assert "gauges:" in text and "histograms:" in text


class TestDeterminism:
    """Identical simulations produce identical counter snapshots."""

    def test_two_identical_runs_match(self, chip16):
        plan = build_traditional_plan(get_spec("lenet"), 16)

        def run():
            METRICS.reset()
            InferenceSimulator(chip16, SimConfig(comm_cache=False)).simulate(plan)
            return METRICS.snapshot()

        first = run()
        second = run()
        assert first == second
        assert first["counters"]["sim.drain_cycles"] > 0
        assert first["counters"]["noc.runs{engine=event}"] > 0
