"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import (
    SyntheticImageDataset,
    smooth_prototypes,
    synthetic_cifar10,
    synthetic_imagenet10,
    synthetic_mnist,
)


class TestPrototypes:
    def test_shapes(self, rng):
        protos = smooth_prototypes(10, (3, 16, 16), rng)
        assert protos.shape == (10, 3, 16, 16)

    def test_unit_rms(self, rng):
        protos = smooth_prototypes(5, (1, 20, 20), rng)
        rms = np.sqrt(np.mean(protos ** 2, axis=(1, 2, 3)))
        np.testing.assert_allclose(rms, 1.0, atol=1e-9)

    def test_classes_differ(self, rng):
        protos = smooth_prototypes(4, (1, 16, 16), rng)
        for i in range(4):
            for j in range(i + 1, 4):
                assert not np.allclose(protos[i], protos[j])

    def test_smoothness(self, rng):
        """Blurred prototypes have less high-frequency energy than noise."""
        protos = smooth_prototypes(1, (1, 32, 32), rng)[0, 0]
        raw = rng.normal(size=(32, 32))
        raw /= np.sqrt(np.mean(raw ** 2))
        def hf_energy(img):
            return float(np.mean(np.diff(img, axis=0) ** 2))
        assert hf_energy(protos) < hf_energy(raw)


class TestGeneration:
    def test_determinism(self):
        a = SyntheticImageDataset.generate("d", (1, 8, 8), train_size=20, test_size=10, seed=3)
        b = SyntheticImageDataset.generate("d", (1, 8, 8), train_size=20, test_size=10, seed=3)
        np.testing.assert_array_equal(a.x_train, b.x_train)
        np.testing.assert_array_equal(a.y_test, b.y_test)

    def test_different_seeds_differ(self):
        a = SyntheticImageDataset.generate("d", (1, 8, 8), train_size=20, test_size=10, seed=3)
        b = SyntheticImageDataset.generate("d", (1, 8, 8), train_size=20, test_size=10, seed=4)
        assert not np.allclose(a.x_train, b.x_train)

    def test_shapes_and_labels(self):
        ds = SyntheticImageDataset.generate(
            "d", (3, 8, 8), num_classes=7, train_size=30, test_size=15, seed=0
        )
        assert ds.x_train.shape == (30, 3, 8, 8)
        assert ds.y_train.shape == (30,)
        assert ds.y_train.min() >= 0 and ds.y_train.max() < 7
        assert ds.input_shape == (3, 8, 8)

    def test_flat(self):
        ds = SyntheticImageDataset.generate(
            "d", (1, 8, 8), train_size=10, test_size=5, seed=0, flat=True
        )
        assert ds.x_train.shape == (10, 64)
        assert ds.input_shape == (64,)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            SyntheticImageDataset.generate("d", (1, 8, 8), train_size=0, test_size=5)

    def test_low_noise_linearly_separable(self):
        """At low noise a nearest-prototype classifier is near-perfect, so the
        datasets really are class-conditional."""
        ds = SyntheticImageDataset.generate(
            "d", (1, 12, 12), train_size=100, test_size=100, noise=0.2,
            max_shift=0, seed=0,
        )
        protos = np.stack([
            ds.x_train[ds.y_train == c].mean(axis=0) for c in range(10)
        ])
        flat_test = ds.x_test.reshape(len(ds.x_test), -1)
        dists = ((flat_test[:, None, :] - protos.reshape(10, -1)[None]) ** 2).sum(-1)
        acc = np.mean(dists.argmin(axis=1) == ds.y_test)
        assert acc > 0.95

    def test_high_noise_hard(self):
        ds = SyntheticImageDataset.generate(
            "d", (1, 12, 12), train_size=50, test_size=200, noise=50.0, seed=0
        )
        protos = np.stack([
            ds.x_train[ds.y_train == c].mean(axis=0)
            if np.any(ds.y_train == c) else np.zeros(ds.shape)
            for c in range(10)
        ])
        flat_test = ds.x_test.reshape(len(ds.x_test), -1)
        dists = ((flat_test[:, None, :] - protos.reshape(10, -1)[None]) ** 2).sum(-1)
        acc = np.mean(dists.argmin(axis=1) == ds.y_test)
        assert acc < 0.6


class TestNamedDatasets:
    def test_mnist_shape(self):
        ds = synthetic_mnist(train_size=10, test_size=5)
        assert ds.shape == (1, 28, 28)
        assert ds.num_classes == 10

    def test_mnist_flat(self):
        ds = synthetic_mnist(train_size=10, test_size=5, flat=True)
        assert ds.x_train.shape == (10, 784)

    def test_cifar_shape(self):
        ds = synthetic_cifar10(train_size=10, test_size=5)
        assert ds.shape == (3, 32, 32)

    def test_imagenet10_size_param(self):
        ds = synthetic_imagenet10(train_size=10, test_size=5, size=48)
        assert ds.shape == (3, 48, 48)
