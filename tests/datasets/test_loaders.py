"""Tests for minibatch iteration."""

import numpy as np
import pytest

from repro.datasets import DataLoader


def make_data(n=25, features=3):
    x = np.arange(n * features, dtype=np.float64).reshape(n, features)
    y = np.arange(n)
    return x, y


class TestDataLoader:
    def test_covers_every_sample_once(self):
        x, y = make_data()
        loader = DataLoader(x, y, batch_size=4, shuffle=True, seed=0)
        seen = np.concatenate([yb for _, yb in loader])
        assert sorted(seen.tolist()) == list(range(25))

    def test_batch_sizes(self):
        x, y = make_data(10)
        sizes = [len(yb) for _, yb in DataLoader(x, y, batch_size=4, shuffle=False)]
        assert sizes == [4, 4, 2]

    def test_drop_last(self):
        x, y = make_data(10)
        loader = DataLoader(x, y, batch_size=4, shuffle=False, drop_last=True)
        sizes = [len(yb) for _, yb in loader]
        assert sizes == [4, 4]
        assert len(loader) == 2

    def test_len(self):
        x, y = make_data(10)
        assert len(DataLoader(x, y, batch_size=4)) == 3

    def test_no_shuffle_preserves_order(self):
        x, y = make_data(8)
        loader = DataLoader(x, y, batch_size=3, shuffle=False)
        first_x, first_y = next(iter(loader))
        np.testing.assert_array_equal(first_y, [0, 1, 2])
        np.testing.assert_array_equal(first_x, x[:3])

    def test_shuffle_deterministic_per_seed(self):
        x, y = make_data(20)
        a = [yb.tolist() for _, yb in DataLoader(x, y, batch_size=5, seed=42)]
        b = [yb.tolist() for _, yb in DataLoader(x, y, batch_size=5, seed=42)]
        assert a == b

    def test_epochs_reshuffle(self):
        x, y = make_data(20)
        loader = DataLoader(x, y, batch_size=20, seed=0)
        first = next(iter(loader))[1].tolist()
        second = next(iter(loader))[1].tolist()
        assert first != second  # different epoch order, same coverage
        assert sorted(first) == sorted(second)

    def test_x_y_alignment_after_shuffle(self):
        x, y = make_data(15)
        for xb, yb in DataLoader(x, y, batch_size=4, seed=1):
            np.testing.assert_array_equal(xb, x[yb])

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            DataLoader(np.zeros((5, 2)), np.zeros(4))

    def test_bad_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(np.zeros((5, 2)), np.zeros(5), batch_size=0)
