"""Tests for the command-line entry point."""

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


class TestCLI:
    def test_runs_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "vgg19" in out

    def test_runs_motivation_fast(self, capsys):
        assert main(["motivation", "--profile", "fast"]) == 0
        assert "communication" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["tableX"])

    def test_unknown_profile_rejected(self):
        with pytest.raises(SystemExit):
            main(["table1", "--profile", "huge"])


class TestCLIAblations:
    def test_runs_mapping_ablation(self, capsys):
        assert main(["ablation-mapping"]) == 0
        out = capsys.readouterr().out
        assert "rigid" in out and "adaptive" in out

    def test_runs_pipeline_ablation(self, capsys):
        assert main(["ablation-pipeline"]) == 0
        assert "intra-layer" in capsys.readouterr().out


class TestCLIWorkers:
    def test_workers_flag_exports_env_and_prints_cache_summary(
        self, capsys, monkeypatch
    ):
        import os

        monkeypatch.setenv("REPRO_WORKERS", "1")  # restored (to absent) after
        assert main(["table1", "--profile", "fast", "--workers", "2"]) == 0
        assert os.environ["REPRO_WORKERS"] == "2"
        assert "[cache]" in capsys.readouterr().out

    def test_workers_rejects_zero(self):
        with pytest.raises(SystemExit):
            main(["table1", "--workers", "0"])


class TestCLIObservability:
    @pytest.fixture(autouse=True)
    def clean_obs_state(self):
        from repro import obs

        yield
        obs.disable_tracing()
        obs.get_collector().clear()
        obs.nocprof.disable_noc_profiling()
        obs.nocprof.clear_profiles()

    def test_trace_and_metrics_flags(self, tmp_path, capsys):
        from repro import obs

        trace_path = tmp_path / "t.jsonl"
        assert main(
            ["motivation", "--profile", "fast", "--trace", str(trace_path), "--metrics"]
        ) == 0
        out = capsys.readouterr().out
        assert f"trace written to {trace_path}" in out
        assert "metrics snapshot" in out
        # The CLI turns tracing back off after the run.
        assert not obs.tracing_enabled()
        assert not obs.nocprof.noc_profiling_enabled()

        records = obs.read_jsonl(trace_path)
        spans = {r["id"]: r for r in records if r["type"] == "span"}
        names = {r["name"] for r in spans.values()}
        assert {"experiment", "sim.simulate", "simulate.layer", "sim.drain"} <= names

        # Spans nest experiment -> ... -> layer -> drain.
        drain = next(r for r in spans.values() if r["name"] == "sim.drain")
        chain = []
        while drain is not None:
            chain.append(drain["name"])
            drain = spans.get(drain["parent"])
        assert chain[-1] == "experiment"
        assert "simulate.layer" in chain

        (metrics,) = [r for r in records if r["type"] == "metrics"]
        counters = metrics["snapshot"]["counters"]
        assert "cache.drain_memo.hit" in counters
        assert "cache.drain_memo.miss" in counters
        assert counters["sim.drain_cycles"] > 0

        profiles = [r for r in records if r["type"] == "noc_profile"]
        assert profiles, "NoC profiling was enabled but exported no profiles"
        assert any(sum(map(sum, p["link_flits"])) > 0 for p in profiles)

    def test_metrics_flag_alone(self, capsys):
        assert main(["table1", "--metrics"]) == 0
        assert "metrics snapshot" in capsys.readouterr().out
