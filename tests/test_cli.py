"""Tests for the command-line entry point."""

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


class TestCLI:
    def test_runs_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "vgg19" in out

    def test_runs_motivation_fast(self, capsys):
        assert main(["motivation", "--profile", "fast"]) == 0
        assert "communication" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["tableX"])

    def test_unknown_profile_rejected(self):
        with pytest.raises(SystemExit):
            main(["table1", "--profile", "huge"])


class TestCLIAblations:
    def test_runs_mapping_ablation(self, capsys):
        assert main(["ablation-mapping"]) == 0
        out = capsys.readouterr().out
        assert "rigid" in out and "adaptive" in out

    def test_runs_pipeline_ablation(self, capsys):
        assert main(["ablation-pipeline"]) == 0
        assert "intra-layer" in capsys.readouterr().out
