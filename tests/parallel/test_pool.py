"""pmap: ordering, adaptive dispatch, chunking, error propagation, obs merge."""

from __future__ import annotations

import os

import pytest

from repro import obs
from repro.obs import METRICS
from repro.parallel import default_workers, in_worker, pmap, resolve_workers
from repro.parallel.pool import _WORKER_ENV


def _snapshot_without_parallel_keys() -> dict:
    """Metrics snapshot minus the dispatch bookkeeping pmap itself emits."""
    snap = METRICS.snapshot()
    return {
        section: {
            k: v for k, v in entries.items() if not k.startswith("parallel.")
        }
        for section, entries in snap.items()
    }


def _square(x: int) -> int:
    return x * x


def _pid_of(_: int) -> int:
    return os.getpid()


def _boom(x: int) -> int:
    if x == 3:
        raise ValueError(f"task {x} exploded")
    return x


def _nested_view(_: int) -> tuple[bool, int, list[int]]:
    """What a task launched by an outer pmap sees when it pmaps again."""
    inner = pmap(_pid_of, range(3), workers=4)
    return in_worker(), resolve_workers(4), inner


def _traced_task(x: int) -> int:
    METRICS.inc("test.pool.work")
    with obs.span("child_work", item=x):
        pass
    return x


class TestWorkerResolution:
    def test_default_is_serial(self):
        assert default_workers() == 1
        assert resolve_workers(None) == 1

    def test_env_sets_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "6")
        assert default_workers() == 6
        assert resolve_workers(None) == 6

    def test_explicit_arg_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "6")
        assert resolve_workers(2) == 2

    def test_garbage_env_is_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        assert resolve_workers(None) == 1

    def test_worker_marker_forces_serial(self, monkeypatch):
        monkeypatch.setenv(_WORKER_ENV, "1")
        assert in_worker()
        assert resolve_workers(8) == 1

    def test_clamped_to_cpu_count_with_warning(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        with pytest.warns(RuntimeWarning, match="clamping to 2"):
            assert resolve_workers(6) == 2

    def test_env_request_clamped_too(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "16")
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        with pytest.warns(RuntimeWarning):
            assert resolve_workers(None) == 4

    def test_at_or_below_cpu_count_passes_through(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        assert resolve_workers(4) == 4
        assert resolve_workers(3) == 3

    def test_unknown_cpu_count_clamps_to_one(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        with pytest.warns(RuntimeWarning):
            assert resolve_workers(2) == 1


class TestPmap:
    def test_results_in_input_order(self):
        assert pmap(_square, range(8), workers=2) == [x * x for x in range(8)]

    def test_serial_path_runs_in_process(self):
        METRICS.reset()
        pids = pmap(_pid_of, range(3), workers=1)
        assert set(pids) == {os.getpid()}
        assert "parallel.pmap.pools{pool=_pid_of}" not in METRICS.snapshot()["counters"]

    def test_parallel_path_uses_other_processes(self):
        pids = pmap(_pid_of, range(8), workers=2)
        assert os.getpid() not in pids
        assert 1 <= len(set(pids)) <= 2

    def test_single_item_stays_serial(self):
        assert pmap(_pid_of, [0], workers=4) == [os.getpid()]

    def test_nested_pmap_degrades_to_serial(self):
        for marked, effective, inner_pids in pmap(_nested_view, range(2), workers=2):
            # Inside a worker the marker is set, any requested count resolves
            # to 1, and the nested pmap ran in the worker's own process.
            assert marked is True
            assert effective == 1
            assert len(set(inner_pids)) == 1
            assert os.getpid() not in inner_pids

    def test_exception_propagates(self):
        METRICS.reset()
        with pytest.raises(ValueError, match="task 3 exploded"):
            pmap(_boom, range(6), workers=2, label="boom")
        assert METRICS.counter("parallel.pmap.failed", pool="boom") == 1

    def test_pool_metrics(self):
        METRICS.reset()
        pmap(_square, range(5), workers=2, label="sq")
        assert METRICS.counter("parallel.pmap.pools", pool="sq") == 1
        assert METRICS.counter("parallel.pmap.tasks", pool="sq") == 5


class TestAdaptiveDispatch:
    def test_single_cpu_falls_back_to_serial(self, monkeypatch):
        # The BENCH_experiments regression this PR fixes: on a 1-CPU box a
        # pool can only lose, so a 2-worker request must run in-process.
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        METRICS.reset()
        with pytest.warns(RuntimeWarning):
            pids = pmap(_pid_of, range(6), workers=2)
        assert set(pids) == {os.getpid()}
        assert METRICS.counter("parallel.dispatch", path="serial") == 1
        assert METRICS.counter("parallel.dispatch.serial", reason="cpu_clamp") == 1

    def test_pool_path_records_dispatch_metric(self):
        METRICS.reset()
        pmap(_square, range(6), workers=2)
        assert METRICS.counter("parallel.dispatch", path="pool_warm") == 1

    def test_min_items_threshold_stays_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_MIN_ITEMS", "10")
        METRICS.reset()
        assert set(pmap(_pid_of, range(6), workers=2)) == {os.getpid()}
        assert METRICS.counter("parallel.dispatch.serial", reason="few_items") == 1

    def test_oversized_payload_stays_serial(self, monkeypatch):
        # Each item is ~64 KiB; with a 1 KiB per-task budget, IPC transfer
        # would dwarf the trivial task, so dispatch keeps the call serial.
        monkeypatch.setenv("REPRO_PARALLEL_MAX_TASK_BYTES", "1024")
        METRICS.reset()
        items = [bytes(65536) for _ in range(4)]
        assert pmap(len, items, workers=2) == [65536] * 4
        assert METRICS.counter("parallel.dispatch.serial", reason="payload") == 1

    def test_unpicklable_callable_falls_back_to_serial(self):
        METRICS.reset()
        out = pmap(lambda x: x + 1, range(4), workers=2)
        assert out == [1, 2, 3, 4]
        assert METRICS.counter("parallel.dispatch.serial", reason="unpicklable") == 1

    def test_nested_calls_record_no_dispatch(self, monkeypatch):
        monkeypatch.setenv(_WORKER_ENV, "1")
        METRICS.reset()
        pmap(_square, range(4), workers=4)
        assert METRICS.counter("parallel.dispatch", path="serial") == 0


class TestChunking:
    def test_explicit_chunksize_preserves_order(self):
        METRICS.reset()
        assert pmap(_square, range(10), workers=2, chunksize=3) == [
            x * x for x in range(10)
        ]
        assert METRICS.counter("parallel.pmap.chunks", pool="_square") == 4
        assert METRICS.counter("parallel.pmap.tasks", pool="_square") == 10

    def test_auto_chunksize_batches_many_small_tasks(self):
        METRICS.reset()
        assert pmap(_square, range(64), workers=2) == [x * x for x in range(64)]
        # 64 items / (2 workers * 4 chunks each) = chunksize 8.
        assert METRICS.counter("parallel.pmap.chunks", pool="_square") == 8

    def test_obs_merge_is_identical_under_chunking(self):
        METRICS.reset()
        [_traced_task(x) for x in range(12)]
        serial = _snapshot_without_parallel_keys()
        METRICS.reset()
        pmap(_traced_task, range(12), workers=2, chunksize=3)
        chunked = _snapshot_without_parallel_keys()
        assert serial == chunked

    def test_chunked_spans_still_reparent_under_pmap(self):
        obs.enable_tracing()
        METRICS.reset()
        pmap(_traced_task, range(8), workers=2, chunksize=4, label="chunked")
        records = obs.get_collector().records()
        pmap_spans = [r for r in records if r["name"] == "pmap"]
        children = [r for r in records if r["name"] == "child_work"]
        assert len(pmap_spans) == 1
        assert len(children) == 8
        assert {c["parent"] for c in children} == {pmap_spans[0]["id"]}
        # Input order survives chunked shipment.
        assert [c["attrs"]["item"] for c in children] == list(range(8))


class TestObsMerge:
    def test_worker_metrics_fold_into_parent(self):
        METRICS.reset()
        pmap(_traced_task, range(6), workers=2)
        assert METRICS.counter("test.pool.work") == 6

    def test_worker_spans_adopt_under_pmap_span(self):
        obs.enable_tracing()
        METRICS.reset()
        pmap(_traced_task, range(4), workers=2, label="traced")
        records = obs.get_collector().records()
        by_name = {}
        for rec in records:
            by_name.setdefault(rec["name"], []).append(rec)
        assert len(by_name["pmap"]) == 1
        pmap_id = by_name["pmap"][0]["id"]
        children = by_name["child_work"]
        assert len(children) == 4
        # Every shipped-back child root hangs off the parent's pmap span.
        assert {c["parent"] for c in children} == {pmap_id}
        # Adopted ids were remapped into the parent collector's id space.
        assert len({r["id"] for r in records}) == len(records)
