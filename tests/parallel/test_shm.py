"""Shared-memory broadcast: round-trip integrity, dedup, lifetime, pmap path."""

from __future__ import annotations

import functools
import os
import pickle
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.obs import METRICS
from repro.parallel import pmap, shm


def _state_fingerprint(_: int, state: dict | None = None) -> tuple:
    return tuple(
        (name, str(arr.dtype), arr.shape, float(arr.sum()))
        for name, arr in sorted(state.items())
    )


def _make_state(dtype) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(7)
    return {
        "conv1.w": rng.standard_normal((64, 3, 5, 5)).astype(dtype),
        "conv1.b": rng.standard_normal(64).astype(dtype),
        "fc.w": rng.standard_normal((128, 256)).astype(dtype),
    }


class TestRoundTrip:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_state_dict_round_trips_bit_exact(self, dtype):
        state = _make_state(dtype)
        ref = shm.share(state)
        blob = pickle.dumps(ref)
        # The whole point: the reference pickles tiny, not payload-sized.
        assert len(blob) < 512
        out = pickle.loads(blob)
        assert sorted(out) == sorted(state)
        for name in state:
            assert out[name].dtype == state[name].dtype
            np.testing.assert_array_equal(out[name], state[name])

    def test_materialization_is_cached_per_process(self):
        ref = shm.share({"x": np.arange(10)})
        assert ref.materialize() is ref.materialize()
        assert pickle.loads(pickle.dumps(ref)) is ref.materialize()


class TestSegmentLifetime:
    def test_same_content_dedups_to_one_segment(self):
        METRICS.reset()
        blob = os.urandom(4096)
        first = shm.share_blob(blob)
        second = shm.share_blob(blob)
        assert first.name == second.name
        assert METRICS.counter("parallel.shm.segments") == 1
        assert METRICS.counter("parallel.shm.broadcast_bytes") == 4096

    def test_release_all_unlinks_segments(self):
        from multiprocessing import shared_memory

        ref = shm.share({"x": 1})
        shm.release_all()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=ref.name)

    def test_release_all_is_idempotent(self):
        shm.share({"x": 1})
        shm.release_all()
        shm.release_all()

    def test_fork_workers_leave_tracker_clean(self):
        # Fork workers share the creator's resource tracker. If an attacher
        # unregisters there (the spawn-only workaround misapplied), the
        # creator's unlink raises KeyError *inside the tracker process*,
        # which surfaces as a traceback on stderr at interpreter exit.
        script = textwrap.dedent(
            """
            import functools, os
            os.cpu_count = lambda: 8
            os.environ["REPRO_SHM_MIN_BYTES"] = "1024"
            os.environ["REPRO_MP_START"] = "fork"
            from repro.parallel import pmap

            payload = os.urandom(512 * 1024)
            def probe(x, blob=None):
                return x + len(blob) % 2
            out = pmap(functools.partial(probe, blob=payload),
                       range(6), workers=2, chunksize=1)
            assert out == list(range(6)), out
            """
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "KeyError" not in proc.stderr, proc.stderr
        assert "resource_tracker" not in proc.stderr, proc.stderr


class TestPmapIntegration:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_large_callable_broadcasts_and_workers_agree(self, monkeypatch, dtype):
        # Low threshold so the modest test payload takes the broadcast path.
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "1024")
        METRICS.reset()
        state = _make_state(dtype)
        fn = functools.partial(_state_fingerprint, state=state)
        expected = _state_fingerprint(0, state=state)
        out = pmap(fn, range(6), workers=2, chunksize=1)
        # Every worker materialized the same bit-exact state from shm.
        assert all(fp == expected for fp in out)
        assert METRICS.counter("parallel.shm.tasks") == 6
        assert METRICS.counter("parallel.shm.segments") == 1
        assert METRICS.counter("parallel.shm.broadcast_bytes") > 0

    def test_small_callable_skips_broadcast(self):
        METRICS.reset()
        pmap(_square, range(6), workers=2)
        assert METRICS.counter("parallel.shm.segments") == 0
        assert METRICS.counter("parallel.shm.tasks") == 0


def _square(x: int) -> int:
    return x * x
