"""Parallel-runner tests touch process-global obs state; restore it each test."""

from __future__ import annotations

import os

import pytest

from repro import obs
from repro.experiments.cache import clear_memo


@pytest.fixture(autouse=True)
def clean_parallel_state(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    monkeypatch.delenv("REPRO_IN_WORKER", raising=False)
    # Multi-worker behavior tests must exercise real pools even on small CI
    # boxes, so pretend there are plenty of CPUs (resolve_workers clamps to
    # os.cpu_count otherwise); the clamp itself is tested explicitly.
    monkeypatch.setattr(os, "cpu_count", lambda: 8)
    obs.disable_tracing()
    obs.get_collector().clear()
    obs.nocprof.disable_noc_profiling()
    obs.nocprof.clear_profiles()
    clear_memo()
    yield
    obs.disable_tracing()
    obs.get_collector().clear()
    obs.nocprof.disable_noc_profiling()
    obs.nocprof.clear_profiles()
    clear_memo()
