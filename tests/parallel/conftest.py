"""Parallel-runner tests touch process-global obs/pool state; restore it each test."""

from __future__ import annotations

import os

import pytest

from repro import obs
from repro.experiments.cache import clear_memo
from repro.parallel import shm, warmpool


@pytest.fixture(autouse=True)
def clean_parallel_state(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    monkeypatch.delenv("REPRO_IN_WORKER", raising=False)
    monkeypatch.delenv("REPRO_POOL", raising=False)
    monkeypatch.delenv("REPRO_PARALLEL_MIN_ITEMS", raising=False)
    monkeypatch.delenv("REPRO_PARALLEL_MAX_TASK_BYTES", raising=False)
    monkeypatch.delenv("REPRO_PARALLEL_CHUNKSIZE", raising=False)
    monkeypatch.delenv("REPRO_SHM_MIN_BYTES", raising=False)
    # Multi-worker behavior tests must exercise real pools even on small CI
    # boxes, so pretend there are plenty of CPUs (resolve_workers clamps to
    # os.cpu_count otherwise); the clamp itself is tested explicitly.
    monkeypatch.setattr(os, "cpu_count", lambda: 8)
    obs.disable_tracing()
    obs.get_collector().clear()
    obs.nocprof.disable_noc_profiling()
    obs.nocprof.clear_profiles()
    clear_memo()
    yield
    # The warm pool and shm segments outlive pmap calls by design; tests must
    # not leak them into each other (worker pids, spawn/reuse counters).
    warmpool.shutdown()
    shm.release_all()
    obs.disable_tracing()
    obs.get_collector().clear()
    obs.nocprof.disable_noc_profiling()
    obs.nocprof.clear_profiles()
    clear_memo()
