"""Warm pool: reuse across pmap calls, recycling, REPRO_POOL modes."""

from __future__ import annotations

import os

import pytest

from repro.obs import METRICS
from repro.parallel import pmap, warmpool


def _pid_of(_: int) -> int:
    return os.getpid()


class TestWarmReuse:
    def test_consecutive_pmaps_reuse_the_same_workers(self):
        METRICS.reset()
        first = set(pmap(_pid_of, range(8), workers=2))
        second = set(pmap(_pid_of, range(8), workers=2))
        third = set(pmap(_pid_of, range(8), workers=2))
        assert os.getpid() not in first
        # The whole point of the warm pool: later calls hit the same
        # processes instead of paying spawn + re-import again.
        assert first == second == third
        assert METRICS.counter("parallel.pool.spawned") == 1
        assert METRICS.counter("parallel.pool.reused") == 2

    def test_pool_spawns_lazily(self):
        METRICS.reset()
        assert warmpool.current_executor() is None
        pmap(_pid_of, range(4), workers=1)  # serial: still no pool
        assert warmpool.current_executor() is None
        pmap(_pid_of, range(4), workers=2)
        assert warmpool.current_executor() is not None

    def test_shutdown_is_idempotent_and_respawns_lazily(self):
        pmap(_pid_of, range(4), workers=2)
        warmpool.shutdown()
        warmpool.shutdown()
        assert warmpool.current_executor() is None
        assert set(pmap(_pid_of, range(4), workers=2)) != {os.getpid()}


class TestRecycling:
    def test_env_change_recycles_the_pool(self, monkeypatch):
        METRICS.reset()
        first = set(pmap(_pid_of, range(8), workers=2))
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/warmpool-recycle-test")
        second = set(pmap(_pid_of, range(8), workers=2))
        # Fork workers snapshot the parent env; a changed REPRO_* var must
        # never leave warm workers running against the stale value.
        assert first.isdisjoint(second)
        assert METRICS.counter("parallel.pool.recycled", reason="env_changed") == 1
        assert METRICS.counter("parallel.pool.spawned") == 2

    def test_workers_and_pool_knobs_do_not_recycle(self, monkeypatch):
        METRICS.reset()
        pmap(_pid_of, range(8), workers=2)
        monkeypatch.setenv("REPRO_WORKERS", "2")
        pmap(_pid_of, range(8), workers=2)
        assert METRICS.counter("parallel.pool.spawned") == 1
        assert METRICS.counter("parallel.pool.recycled", reason="env_changed") == 0

    def test_growing_worker_count_recycles(self):
        METRICS.reset()
        pmap(_pid_of, range(8), workers=2)
        pmap(_pid_of, range(8), workers=4)
        assert METRICS.counter("parallel.pool.recycled", reason="grow") == 1
        # Shrinking reuses the bigger pool (submission windowing bounds
        # concurrency, not pool size).
        pmap(_pid_of, range(8), workers=2)
        assert METRICS.counter("parallel.pool.spawned") == 2


class TestPoolModes:
    def test_fresh_mode_never_keeps_a_pool(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL", "fresh")
        METRICS.reset()
        pids = pmap(_pid_of, range(4), workers=2)
        assert os.getpid() not in pids
        assert warmpool.current_executor() is None
        assert METRICS.counter("parallel.dispatch", path="pool_fresh") == 1
        assert METRICS.counter("parallel.pool.spawned") == 0

    def test_serial_mode_forces_in_process(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL", "serial")
        METRICS.reset()
        assert set(pmap(_pid_of, range(4), workers=4)) == {os.getpid()}
        assert METRICS.counter("parallel.dispatch", path="serial") == 1
        assert METRICS.counter("parallel.dispatch.serial", reason="forced") == 1

    def test_unknown_mode_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL", "sometimes")
        with pytest.raises(ValueError, match="REPRO_POOL"):
            pmap(_pid_of, range(4), workers=2)

    def test_default_mode_is_persistent(self):
        assert warmpool.pool_mode() == "persistent"
