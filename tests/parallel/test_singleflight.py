"""Single-flight lock-file claims: one computer, waiting losers, stale takeover."""

from __future__ import annotations

import json
import multiprocessing
import os
import time

from repro.obs import METRICS
from repro.parallel.singleflight import run_single_flight


def _artifact(tmp_path):
    return tmp_path / "artifact.json"


def _load(path):
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None


class TestSerialBehaviour:
    def test_computes_when_absent(self, tmp_path):
        METRICS.reset()
        path = _artifact(tmp_path)

        def compute():
            path.write_text(json.dumps({"who": "me"}))
            return {"who": "me"}

        value = run_single_flight(
            tmp_path / "a.lock", check=lambda: _load(path), compute=compute
        )
        assert value == {"who": "me"}
        assert not (tmp_path / "a.lock").exists()
        assert METRICS.counter("cache.lock.acquired", kind="artifact") == 1

    def test_fast_path_skips_lock(self, tmp_path):
        METRICS.reset()
        path = _artifact(tmp_path)
        path.write_text(json.dumps({"warm": True}))
        value = run_single_flight(
            tmp_path / "a.lock",
            check=lambda: _load(path),
            compute=lambda: (_ for _ in ()).throw(AssertionError("must not compute")),
        )
        assert value == {"warm": True}
        assert METRICS.counter("cache.lock.acquired", kind="artifact") == 0

    def test_stale_lock_of_dead_owner_is_broken(self, tmp_path):
        METRICS.reset()
        dead = multiprocessing.get_context("fork").Process(target=os._exit, args=(0,))
        dead.start()
        dead.join()
        lock = tmp_path / "a.lock"
        lock.write_text(json.dumps({"pid": dead.pid, "t": time.time()}))

        path = _artifact(tmp_path)

        def compute():
            path.write_text(json.dumps({"takeover": True}))
            return {"takeover": True}

        value = run_single_flight(
            lock, check=lambda: _load(path), compute=compute, poll_s=0.01
        )
        assert value == {"takeover": True}
        assert METRICS.counter("cache.lock.stale_takeover", kind="artifact") == 1
        assert METRICS.counter("cache.lock.contended", kind="artifact") == 1
        assert METRICS.counter("cache.lock.acquired", kind="artifact") == 1

    def test_aged_out_lock_of_live_owner_is_broken(self, tmp_path, monkeypatch):
        METRICS.reset()
        monkeypatch.setenv("REPRO_LOCK_STALE_S", "0.01")
        lock = tmp_path / "a.lock"
        lock.write_text(json.dumps({"pid": os.getpid(), "t": time.time() - 60}))
        os.utime(lock, (time.time() - 60, time.time() - 60))

        path = _artifact(tmp_path)

        def compute():
            path.write_text(json.dumps({"aged": True}))
            return {"aged": True}

        value = run_single_flight(
            lock, check=lambda: _load(path), compute=compute, poll_s=0.01
        )
        assert value == {"aged": True}
        assert METRICS.counter("cache.lock.stale_takeover", kind="artifact") == 1


def _racer(tmp_path: str, barrier, idx: int):
    """One contender: records who actually computed in compute.log (O_APPEND)."""
    from pathlib import Path

    root = Path(tmp_path)
    artifact = root / "artifact.json"
    log = root / "compute.log"

    def compute():
        fd = os.open(log, os.O_CREAT | os.O_APPEND | os.O_WRONLY)
        with os.fdopen(fd, "w") as f:
            f.write(f"{idx}\n")
        time.sleep(0.2)  # long enough that the loser must wait on the claim
        tmp = root / f".artifact-{idx}.tmp"
        tmp.write_text(json.dumps({"winner": idx}))
        os.replace(tmp, artifact)
        return {"winner": idx}

    barrier.wait()
    value = run_single_flight(
        root / "artifact.lock",
        check=lambda: _load(artifact),
        compute=compute,
        poll_s=0.01,
    )
    (root / f"result-{idx}.json").write_text(json.dumps(value))


class TestCrossProcessRace:
    def test_exactly_one_of_two_processes_computes(self, tmp_path):
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)
        procs = [
            ctx.Process(target=_racer, args=(str(tmp_path), barrier, i))
            for i in range(2)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=30)
            assert p.exitcode == 0

        computed = (tmp_path / "compute.log").read_text().split()
        assert len(computed) == 1  # single flight: exactly one trainer
        winner = int(computed[0])
        # Both contenders returned the winner's artifact.
        for i in range(2):
            value = json.loads((tmp_path / f"result-{i}.json").read_text())
            assert value == {"winner": winner}
        assert not (tmp_path / "artifact.lock").exists()
