"""repro-serve multi-chip-module flags: single runs, sweeps, validation."""

import pytest

from repro.serve.cli import main
from repro.serve.cluster import clear_service_memo


@pytest.fixture(autouse=True)
def isolated(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    clear_service_memo()
    yield
    clear_service_memo()
    from repro import obs

    obs.disable_tracing()
    obs.get_collector().clear()


class TestMcmSingleRun:
    def test_pipelined_run_reports_stages(self, capsys):
        assert main(
            ["--network", "lenet", "--chips", "2", "--stages", "2", "--cores", "8",
             "--requests", "20", "--rate", "10", "--seed", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "2-chip MCM" in out
        assert "stage 0" in out and "stage 1" in out
        assert "steady-state interval" in out
        assert "SLO report" in out

    def test_interchip_override_reflected(self, capsys):
        args = ["--network", "lenet", "--chips", "2", "--stages", "2",
                "--cores", "4", "--requests", "10", "--rate", "5"]
        assert main(args) == 0
        base = capsys.readouterr().out
        assert main(args + ["--interchip-bytes-per-cycle", "8"]) == 0
        slow = capsys.readouterr().out
        assert "8 B/cycle" in slow
        assert base != slow

    def test_replicated_pipelines(self, capsys):
        assert main(
            ["--network", "lenet", "--chips", "4", "--stages", "2", "--cores", "4",
             "--requests", "20", "--rate", "10"]
        ) == 0
        assert "2 x 2-chip" in capsys.readouterr().out


class TestMcmValidation:
    def test_stages_without_chips_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["--network", "lenet", "--stages", "2", "--cores", "8"])

    def test_stages_must_tile_chips(self, capsys):
        with pytest.raises(SystemExit):
            main(["--network", "lenet", "--chips", "4", "--stages", "3",
                  "--cores", "8"])

    def test_nonpositive_chips_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["--network", "lenet", "--chips", "0", "--cores", "8"])


class TestMcmSweep:
    def test_sweep_fast_profile_has_global_frontier(self, capsys):
        assert main(["--sweep", "--chips", "4", "--profile", "fast"]) == 0
        out = capsys.readouterr().out
        assert "MCM" in out
        assert "frontier" in out.lower()
        # Both single-chip and pipelined rows compete in one table.
        assert "1s x" in out and "2s x" in out


class TestSearchStages:
    def test_searched_split_reported_and_not_worse(self, capsys):
        args = ["--network", "convnet", "--chips", "4", "--requests", "20",
                "--rate", "10"]
        assert main(args) == 0
        balanced = capsys.readouterr().out
        assert "(balanced)" in balanced
        assert main(args + ["--search-stages"]) == 0
        searched = capsys.readouterr().out
        assert "(searched)" in searched

        def interval(out):
            line = next(l for l in out.splitlines() if "steady-state interval" in l)
            return int(line.split("interval")[1].split("cycles")[0].replace(",", ""))

        assert interval(searched) <= interval(balanced)

    def test_search_stages_requires_chips(self, capsys):
        with pytest.raises(SystemExit):
            main(["--network", "lenet", "--search-stages"])

    def test_search_stages_rejected_in_sweep(self, capsys):
        with pytest.raises(SystemExit):
            main(["--chips", "4", "--sweep", "--search-stages", "--profile", "fast"])
