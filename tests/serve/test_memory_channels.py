"""The memory_channels knob: serializing DRAM input streaming across groups."""

import pytest

from repro.models import lenet_spec
from repro.serve.cluster import Cluster, PlanService, build_spec_cluster
from repro.serve.scheduler import FIFOScheduler
from repro.serve.simulator import ServeSimulator
from repro.serve.workload import LoadGenerator, PoissonWorkload, Request


class FixedWorkload(LoadGenerator):
    name = "fixed"

    def __init__(self, requests):
        self._requests = list(requests)

    def initial(self):
        return list(self._requests)


def _cluster(memory_channels=None, total=8, group=4, latency=1000, input_load=200):
    svc = PlanService(
        model="m",
        scheme="traditional",
        cores=group,
        latency_cycles=latency,
        input_load_cycles=input_load,
    )
    return Cluster(
        total_cores=total,
        group_cores=group,
        services={"m": svc},
        memory_channels=memory_channels,
    )


class TestSerializedInputStreaming:
    def test_one_channel_staggers_concurrent_input_loads(self):
        """Two groups, ONE channel: r1's DRAM stream waits for r0's to finish
        at t=200, so r1 finishes at 200 + 1000 = 1200 instead of 1000."""
        cluster = _cluster(memory_channels=1)
        workload = FixedWorkload([Request(0, 0, "m"), Request(1, 0, "m")])
        result = ServeSimulator(cluster, FIFOScheduler(), workload).run()
        by_rid = {r.rid: r for r in result.records}
        assert by_rid[0].finish == 1000
        assert by_rid[1].finish == 1200
        assert sorted(result.busy_cycles.values()) == [1000, 1200]

    def test_enough_channels_change_nothing(self):
        """M == num_groups is the independent-channel model, bit-exactly."""
        workload = [Request(i, i * 50, "m") for i in range(6)]
        base = ServeSimulator(
            _cluster(), FIFOScheduler(), FixedWorkload(workload)
        ).run()
        capped = ServeSimulator(
            _cluster(memory_channels=2), FIFOScheduler(), FixedWorkload(workload)
        ).run()
        assert capped.records == base.records
        assert capped.busy_cycles == base.busy_cycles

    def test_default_none_matches_many_channels_on_poisson(self):
        def run(mc):
            workload = PoissonWorkload(40.0, 50, seed=3, mix={"lenet": 1.0})
            cluster = build_spec_cluster(
                lenet_spec(), 16, 4, memory_channels=mc
            )
            return ServeSimulator(cluster, FIFOScheduler(), workload).run()

        assert run(None).records == run(4).records

    def test_scarce_channels_only_delay(self):
        """Serializing input streams never makes any request finish earlier."""
        workload = [Request(i, 0, "m") for i in range(4)]
        free = ServeSimulator(
            _cluster(total=16), FIFOScheduler(), FixedWorkload(workload)
        ).run()
        tight = ServeSimulator(
            _cluster(total=16, memory_channels=1),
            FIFOScheduler(),
            FixedWorkload(workload),
        ).run()
        free_fin = {r.rid: r.finish for r in free.records}
        tight_fin = {r.rid: r.finish for r in tight.records}
        assert all(tight_fin[rid] >= free_fin[rid] for rid in free_fin)
        assert any(tight_fin[rid] > free_fin[rid] for rid in free_fin)


class TestValidationAndPassthrough:
    @pytest.mark.parametrize("mc", [0, -2])
    def test_nonpositive_channels_rejected(self, mc):
        with pytest.raises(ValueError, match="memory_channels"):
            _cluster(memory_channels=mc)

    def test_build_spec_cluster_passthrough(self):
        cluster = build_spec_cluster(lenet_spec(), 8, 4, memory_channels=1)
        assert cluster.memory_channels == 1
        assert build_spec_cluster(lenet_spec(), 8, 4).memory_channels is None
