"""Replica-group construction and per-plan service memoization."""

import pytest

from repro.models import convnet_spec, lenet_spec
from repro.serve.cluster import (
    Cluster,
    PlanService,
    build_replica_plan,
    build_spec_cluster,
    clear_service_memo,
    default_group_map,
    service_for_plan,
)
from repro.sim.engine import InferenceSimulator, SimConfig
from repro.accel import ChipConfig


@pytest.fixture(autouse=True)
def fresh_memo():
    clear_service_memo()
    yield
    clear_service_memo()


class TestPlanService:
    def test_batch_amortizes_only_the_input_load(self):
        svc = PlanService("m", "traditional", 4, latency_cycles=1000, input_load_cycles=200)
        assert svc.body_cycles == 800
        assert svc.batch_cycles(1) == 1000
        assert svc.batch_cycles(3) == 200 + 3 * 800
        assert svc.batch_cycles(3) < 3 * svc.batch_cycles(1)

    def test_validation(self):
        with pytest.raises(ValueError):
            PlanService("m", "s", 4, latency_cycles=0, input_load_cycles=0)
        with pytest.raises(ValueError):
            PlanService("m", "s", 4, latency_cycles=10, input_load_cycles=11)
        with pytest.raises(ValueError):
            PlanService("m", "s", 4, latency_cycles=10, input_load_cycles=5).batch_cycles(0)


class TestServiceMemo:
    def test_one_simulation_per_distinct_plan(self, monkeypatch):
        calls = []
        real = InferenceSimulator.simulate

        def counting(self, plan):
            calls.append(plan.name)
            return real(self, plan)

        monkeypatch.setattr(InferenceSimulator, "simulate", counting)
        plan = build_replica_plan(lenet_spec(), 4)
        first = service_for_plan(plan, model="lenet")
        again = service_for_plan(build_replica_plan(lenet_spec(), 4), model="lenet")
        assert len(calls) == 1
        assert first == again

    def test_matches_engine_result(self):
        plan = build_replica_plan(lenet_spec(), 4)
        svc = service_for_plan(plan, model="lenet")
        result = InferenceSimulator(ChipConfig.table2(4), SimConfig()).simulate(plan)
        assert svc.latency_cycles == result.total_cycles
        assert svc.input_load_cycles == result.input_load_cycles


class TestGroupMap:
    def test_skips_first_conv_and_indivisible_layers(self):
        gmap = default_group_map(convnet_spec(), 16)
        # conv1 (input-facing) excluded; conv2 (32->32) and conv3 (32->64)
        # both divide by 16.
        assert "conv1" not in gmap
        assert gmap["conv2"] == 16 and gmap["conv3"] == 16

    def test_structure_plan_moves_less_traffic(self):
        spec = convnet_spec()
        trad = build_replica_plan(spec, 4, "traditional")
        struct = build_replica_plan(spec, 4, "structure")
        assert struct.scheme == "structure"
        assert struct.total_traffic_bytes < trad.total_traffic_bytes

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="ss_mask"):
            build_replica_plan(convnet_spec(), 4, "ss")


class TestCluster:
    def test_group_arithmetic_and_capacity(self):
        cluster = build_spec_cluster(lenet_spec(), 8, 4)
        assert cluster.num_groups == 2
        lat = cluster.unloaded_latency("lenet")
        assert cluster.capacity_per_megacycle("lenet") == pytest.approx(2e6 / lat)
        assert "2 x 4-core" in cluster.describe()

    def test_single_core_groups_are_data_parallelism(self):
        cluster = build_spec_cluster(lenet_spec(), 4, 1)
        assert cluster.num_groups == 4
        # A 1-core plan has no synchronization traffic, so its service is
        # pure compute + input load.
        assert cluster.services["lenet"].cores == 1

    def test_rejects_non_tiling_groups(self):
        svc = PlanService("m", "traditional", 3, latency_cycles=10, input_load_cycles=0)
        with pytest.raises(ValueError):
            Cluster(total_cores=16, group_cores=3, services={"m": svc})

    def test_rejects_mismatched_service_cores(self):
        svc = PlanService("m", "traditional", 8, latency_cycles=10, input_load_cycles=0)
        with pytest.raises(ValueError):
            Cluster(total_cores=16, group_cores=4, services={"m": svc})

    def test_unknown_model_lookup_names_known_ones(self):
        cluster = build_spec_cluster(lenet_spec(), 4, 4)
        with pytest.raises(KeyError, match="lenet"):
            cluster.service("resnet")
