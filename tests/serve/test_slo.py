"""Percentile math, SLO scoring, and result aggregation."""

import pytest

from repro.serve.results import RequestRecord, ServeResult
from repro.serve.slo import SLO, SLOReport, evaluate_slo, percentile


class TestPercentile:
    def test_nearest_rank_hand_computed(self):
        values = list(range(1, 101))  # 1..100
        assert percentile(values, 50) == 50
        assert percentile(values, 95) == 95
        assert percentile(values, 99) == 99
        assert percentile(values, 100) == 100

    def test_small_samples(self):
        assert percentile([7], 50) == 7
        assert percentile([7], 99) == 7
        # n=4: p50 rank = ceil(2) = 2nd, p99 rank = ceil(3.96) = 4th.
        assert percentile([40, 10, 30, 20], 50) == 20
        assert percentile([40, 10, 30, 20], 99) == 40

    def test_unsorted_input_ok(self):
        assert percentile([5, 1, 9, 3], 50) == 3

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 0)
        with pytest.raises(ValueError):
            percentile([1], 101)


def _result(latencies, group_cores=4, total_cores=4):
    records = [
        RequestRecord(
            rid=i, model="m", arrival=0, start=0, finish=lat, replica=0,
        )
        for i, lat in enumerate(latencies)
    ]
    return ServeResult(
        scheme="traditional",
        scheduler="fifo",
        total_cores=total_cores,
        group_cores=group_cores,
        records=records,
        busy_cycles={0: max(latencies, default=0)},
    )


class TestEvaluate:
    def test_violation_rate_and_goodput(self):
        result = _result([100, 200, 300, 400])
        report = evaluate_slo(result, SLO(250))
        assert report.requests == 4
        assert report.violation_rate == pytest.approx(0.5)
        # makespan = 400 cycles; 2 good completions.
        assert report.goodput_per_megacycle == pytest.approx(2 * 1e6 / 400)
        assert report.throughput_per_megacycle == pytest.approx(4 * 1e6 / 400)
        assert report.p99 == 400

    def test_empty_result_reports_zeros(self):
        report = evaluate_slo(_result([]), SLO(100))
        assert report == SLOReport.empty(SLO(100))
        assert report.requests == 0
        assert report.violation_rate == 0.0

    def test_render_mentions_key_metrics(self):
        report = evaluate_slo(_result([100, 200]), SLO(150))
        text = report.render()
        assert "p99 latency" in text
        assert "goodput" in text
        assert "50.0%" in text  # violation rate

    def test_slo_validation(self):
        with pytest.raises(ValueError):
            SLO(0)
        assert SLO(10).met_by(10)
        assert not SLO(10).met_by(11)


class TestServeResult:
    def test_record_validation(self):
        with pytest.raises(ValueError):
            RequestRecord(rid=0, model="m", arrival=10, start=5, finish=20, replica=0)

    def test_utilization_and_makespan(self):
        records = [
            RequestRecord(rid=0, model="m", arrival=0, start=0, finish=100, replica=0),
            RequestRecord(rid=1, model="m", arrival=0, start=0, finish=50, replica=1),
        ]
        result = ServeResult(
            scheme="traditional", scheduler="fifo", total_cores=8, group_cores=4,
            records=records, busy_cycles={0: 100, 1: 50},
        )
        assert result.makespan == 100
        assert result.utilization == pytest.approx(150 / 200)
        assert "2 x 4-core" in result.summary()

    def test_empty_result_is_harmless(self):
        result = ServeResult(
            scheme="traditional", scheduler="fifo", total_cores=4, group_cores=4
        )
        assert result.makespan == 0
        assert result.utilization == 0.0
        assert result.throughput_per_megacycle == 0.0
        assert "no requests" in result.summary()
