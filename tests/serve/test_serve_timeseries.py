"""Serve-loop integration of the sim-time time-series aggregator.

The headline acceptance criterion lives here: the series' cumulative block
must reproduce the end-of-run ``ServeResult`` / ``SLOReport`` numbers
*exactly* — same ints, bit-identical floats — because both sides intentionally
share formulas and summation order.
"""

import json

import pytest

from repro import obs
from repro.experiments.config import FAST
from repro.experiments.tableS1 import run_tableS1
from repro.models.zoo import lenet_spec
from repro.obs.chrometrace import validate_chrome_trace
from repro.obs.payload import begin_capture, end_capture, merge_payload
from repro.serve.cli import main as serve_cli_main
from repro.serve.cluster import build_spec_cluster, clear_service_memo
from repro.serve.scheduler import make_scheduler
from repro.serve.simulator import simulate_serving
from repro.serve.slo import SLO
from repro.serve.workload import PoissonWorkload


@pytest.fixture(autouse=True)
def isolated(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    clear_service_memo()

    def reset():
        obs.disable_tracing()
        obs.get_collector().clear()
        obs.nocprof.disable_noc_profiling()
        obs.nocprof.clear_profiles()
        obs.disable_timeseries()
        obs.clear_timeseries()

    reset()
    yield
    clear_service_memo()
    reset()


def _run(rate=60.0, requests=120, scheduler="batch", seed=3, slo_factor=2.0):
    spec = lenet_spec()
    cluster = build_spec_cluster(spec, 8, 4, scheme="traditional")
    slo = SLO(int(slo_factor * cluster.unloaded_latency(spec.name)))
    workload = PoissonWorkload(
        rate_per_megacycle=rate, num_requests=requests, seed=seed,
        mix={spec.name: 1.0},
    )
    sched = make_scheduler(scheduler, max_batch=4)
    result, report = simulate_serving(cluster, sched, workload, slo=slo)
    return result, report


class _EmptyWorkload:
    """Open-loop generator that never issues a request."""

    def initial(self):
        return []

    def on_completion(self, request, now):
        return None


class TestCumulativeMatchesResults:
    def test_exact_agreement_with_serve_result_and_slo_report(self):
        obs.enable_timeseries()
        result, report = _run()
        [record] = obs.global_timeseries()
        cum = record["cumulative"]

        assert cum["requests"] == result.num_requests == report.requests
        assert cum["makespan"] == result.makespan
        assert cum["p50"] == report.p50
        assert cum["p95"] == report.p95
        assert cum["p99"] == report.p99
        assert cum["percentiles_exact"]
        assert cum["mean_latency"] == report.mean_latency
        assert cum["max_latency"] == report.max_latency
        assert cum["mean_queue_cycles"] == report.mean_queue_cycles
        assert cum["violation_rate"] == report.violation_rate
        assert cum["throughput_per_megacycle"] == report.throughput_per_megacycle
        assert cum["goodput_per_megacycle"] == report.goodput_per_megacycle
        assert cum["utilization"] == report.utilization == result.utilization
        assert cum["busy_cycles"] == {
            str(g): c for g, c in result.busy_cycles.items()
        }

    def test_window_sums_reconcile_with_totals(self):
        obs.enable_timeseries(window_cycles=2048)
        result, _ = _run()
        [record] = obs.global_timeseries()
        ws = record["windows"]
        assert sum(w["completions"] for w in ws) == result.num_requests
        assert sum(w["arrivals"] for w in ws) == result.num_requests
        per_replica = {}
        for w in ws:
            for replica, busy in w["busy_cycles"].items():
                per_replica[replica] = per_replica.get(replica, 0) + busy
        assert per_replica == {
            str(g): c for g, c in result.busy_cycles.items() if c
        }

    def test_empty_run_exports_cleanly(self, tmp_path):
        obs.enable_timeseries()
        spec = lenet_spec()
        cluster = build_spec_cluster(spec, 4, 4, scheme="traditional")
        result, _ = simulate_serving(
            cluster, make_scheduler("fifo"), _EmptyWorkload()
        )
        assert result.num_requests == 0
        [record] = obs.global_timeseries()
        assert record["cumulative"]["requests"] == 0
        assert record["windows"] == []
        out = tmp_path / "empty.perfetto.json"
        obs.export_perfetto(out)
        payload = json.loads(out.read_text())
        assert validate_chrome_trace(payload["traceEvents"]) == []

    def test_disabled_collection_records_nothing(self):
        _run()
        assert obs.global_timeseries() == []


class TestSweepByteIdentity:
    def test_serial_vs_two_workers(self):
        """The sweep's merged time-series must be byte-identical to serial."""
        obs.enable_timeseries()
        run_tableS1(profile=FAST, workers=1)
        serial = json.dumps(obs.global_timeseries(), sort_keys=True)
        assert serial != "[]"

        obs.clear_timeseries()
        clear_service_memo()
        run_tableS1(profile=FAST, workers=2)
        parallel = json.dumps(obs.global_timeseries(), sort_keys=True)
        assert parallel == serial

    def test_worker_chunk_path_matches_serial(self):
        """Per-task capture + merge (what a pool child runs) equals serial.

        On a 1-CPU host ``pmap`` clamps ``--workers 2`` to the serial loop,
        so the cross-process mechanics are exercised here directly through
        the worker-side chunk runner.
        """
        from repro.parallel.pool import _run_chunk

        def task(seed):
            result, _ = _run(requests=30, seed=seed)
            return result.num_requests

        obs.enable_timeseries()
        for seed in (1, 2):
            _run(requests=30, seed=seed)
        serial = json.dumps(obs.global_timeseries(), sort_keys=True)

        obs.clear_timeseries()
        clear_service_memo()
        chunk = _run_chunk((task, [1, 2], False, False, {}))
        obs.clear_timeseries()  # the last task's state is still live
        obs.enable_timeseries()
        for _result, payload in chunk:
            assert not payload["spans"]
            merge_payload(payload)
        assert json.dumps(obs.global_timeseries(), sort_keys=True) == serial


class TestPayloadRoundTrip:
    def test_capture_and_merge_preserve_series(self):
        collector = begin_capture(False, False, {"window_cycles": 512})
        assert obs.timeseries_enabled()
        assert obs.timeseries_config() == {"window_cycles": 512}
        result, _ = _run(requests=40)
        payload = end_capture(collector)
        assert len(payload["timeseries"]) == 1

        begin_capture(False, False, None)  # simulate the next, untraced task
        assert not obs.timeseries_enabled()
        assert obs.global_timeseries() == []

        obs.enable_timeseries()
        merge_payload(payload)
        [record] = obs.global_timeseries()
        assert record["cumulative"]["requests"] == result.num_requests
        assert record["initial_window_cycles"] == 512


class TestServeCliPerfetto:
    def test_perfetto_flag_writes_valid_trace(self, tmp_path, capsys):
        out = tmp_path / "serve.perfetto.json"
        assert serve_cli_main(
            ["--network", "lenet", "--cores", "4", "--group-cores", "4",
             "--requests", "15", "--rate", "5", "--perfetto", str(out),
             "--ts-window", "4096"]
        ) == 0
        assert "perfetto trace written" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        events = payload["traceEvents"]
        assert validate_chrome_trace(events) == []
        # Wall-clock spans and one sim-time serve process both present.
        assert any(e.get("cat") == "span" for e in events)
        assert any(e.get("cat") == "batch" for e in events)
        flows = {e["id"] for e in events if e.get("ph") == "s"}
        assert len(flows) == 15

    def test_cli_leaves_collection_disabled(self, tmp_path):
        out = tmp_path / "serve.perfetto.json"
        serve_cli_main(
            ["--network", "lenet", "--cores", "4", "--group-cores", "4",
             "--requests", "5", "--rate", "5", "--perfetto", str(out)]
        )
        assert not obs.timeseries_enabled()
        assert obs.global_timeseries() == []
