"""Table S1 serving sweep: seeded determinism and the paper's QoS crossover."""

import pytest

from repro.experiments.config import FAST
from repro.experiments.tableS1 import render_tableS1, run_tableS1
from repro.serve.cluster import clear_service_memo


@pytest.fixture(autouse=True)
def fresh_memo():
    clear_service_memo()
    yield
    clear_service_memo()


@pytest.fixture(scope="module")
def rows():
    clear_service_memo()
    return run_tableS1(profile=FAST)


class TestSweepShape:
    def test_row_count_and_configurations(self, rows):
        # traditional x {16,4,1} + structure x {16,4}, each at 2 fast-profile
        # load factors (structure needs >=2 cores for channel grouping).
        assert len(rows) == 10
        configs = {(r.scheme, r.group_cores) for r in rows}
        assert ("traditional", 1) in configs
        assert ("structure", 1) not in configs

    def test_deterministic_for_a_seed(self, rows):
        clear_service_memo()
        again = run_tableS1(profile=FAST)
        assert rows == again

    def test_replica_arithmetic(self, rows):
        for r in rows:
            assert r.replicas * r.group_cores == 16


class TestQoSCrossover:
    """Paper SI: model parallelism wins tail latency at low load,
    data parallelism wins goodput under saturation."""

    def test_model_parallel_wins_latency_at_low_load(self, rows):
        low = [r for r in rows if r.scheme == "traditional" and r.load_factor == 0.2]
        best = min(low, key=lambda r: r.p50)
        assert best.group_cores == 16
        # Even the occasional queueing on the single full-chip replica keeps
        # its tail far below the 1-core groups' raw service time.
        full = next(r for r in low if r.group_cores == 16)
        single = next(r for r in low if r.group_cores == 1)
        assert full.p99 < single.p99

    def test_data_parallel_wins_goodput_at_high_load(self, rows):
        high = [r for r in rows if r.scheme == "traditional" and r.load_factor == 2.0]
        best = max(high, key=lambda r: r.goodput)
        assert best.group_cores < 16
        # The full-chip model-parallel group saturates: violations pile up.
        full = next(r for r in high if r.group_cores == 16)
        assert full.violation_rate > 0.5
        assert best.goodput > 2 * full.goodput

    def test_pareto_frontier_marked_per_scheme(self, rows):
        for scheme in ("traditional", "structure"):
            flagged = [r for r in rows if r.scheme == scheme and r.pareto]
            assert flagged, f"no Pareto points for {scheme}"


class TestRender:
    def test_render_has_headers_and_stars(self, rows):
        text = render_tableS1(rows)
        assert "Table S1" in text
        assert "p99 cyc" in text
        assert "goodput" in text
        assert "*" in text
        assert text.count("\n") >= len(rows)
