"""Seeded determinism and distributional sanity of the load generators."""

import numpy as np
import pytest

from repro.serve.workload import (
    ClosedLoopWorkload,
    MMPPWorkload,
    PoissonWorkload,
    Request,
)


class TestPoisson:
    def test_deterministic_for_a_seed(self):
        a = PoissonWorkload(10.0, 50, seed=3).initial()
        b = PoissonWorkload(10.0, 50, seed=3).initial()
        assert a == b

    def test_different_seeds_differ(self):
        a = PoissonWorkload(10.0, 50, seed=3).initial()
        b = PoissonWorkload(10.0, 50, seed=4).initial()
        assert a != b

    def test_count_order_and_positivity(self):
        requests = PoissonWorkload(25.0, 200, seed=0).initial()
        assert len(requests) == 200
        arrivals = [r.arrival for r in requests]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] >= 1
        assert [r.rid for r in requests] == list(range(200))

    def test_mean_rate_close_to_requested(self):
        rate = 50.0  # per megacycle -> mean gap 20k cycles
        requests = PoissonWorkload(rate, 2000, seed=1).initial()
        span = requests[-1].arrival - requests[0].arrival
        measured = (len(requests) - 1) * 1e6 / span
        assert measured == pytest.approx(rate, rel=0.15)

    def test_model_mix_respected(self):
        mix = {"a": 3.0, "b": 1.0}
        requests = PoissonWorkload(10.0, 400, seed=0, mix=mix).initial()
        counts = {m: sum(r.model == m for r in requests) for m in mix}
        assert counts["a"] + counts["b"] == 400
        assert counts["a"] > counts["b"]

    def test_priorities_follow_model(self):
        requests = PoissonWorkload(
            10.0, 50, seed=0, mix={"hi": 1, "lo": 1}, priorities={"hi": 5}
        ).initial()
        for r in requests:
            assert r.priority == (5 if r.model == "hi" else 0)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            PoissonWorkload(0.0, 10)
        with pytest.raises(ValueError):
            PoissonWorkload(1.0, 0)
        with pytest.raises(ValueError):
            PoissonWorkload(1.0, 10, mix={"a": -1.0})


class TestMMPP:
    def test_deterministic_and_counted(self):
        w = MMPPWorkload(5.0, 80.0, 100, seed=9)
        assert w.initial() == w.initial()
        assert len(w.initial()) == 100

    def test_burstier_than_poisson(self):
        """Strong rate contrast drives interarrival CV above the
        exponential's CV of 1 (the whole point of the MMPP model)."""
        mmpp = MMPPWorkload(2.0, 200.0, 1500, mean_dwell_cycles=2e6, seed=5).initial()
        gaps = np.diff([r.arrival for r in mmpp])
        cv = gaps.std() / gaps.mean()
        assert cv > 1.2

    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            MMPPWorkload(0.0, 10.0, 10)
        with pytest.raises(ValueError):
            MMPPWorkload(1.0, 1.0, 10, mean_dwell_cycles=0)


class TestClosedLoop:
    def test_initial_is_one_request_per_client(self):
        w = ClosedLoopWorkload(clients=6, requests_per_client=3, seed=2)
        initial = w.initial()
        assert len(initial) == 6
        assert len({r.rid for r in initial}) == 6

    def test_completion_spawns_until_quota(self):
        w = ClosedLoopWorkload(
            clients=1, requests_per_client=3, think_cycles=100.0, seed=0
        )
        (first,) = w.initial()
        second = w.on_completion(first, finish_cycle=500)
        assert second is not None and second.arrival > 500
        third = w.on_completion(second, finish_cycle=900)
        assert third is not None
        assert w.on_completion(third, finish_cycle=1500) is None

    def test_initial_replays_identically(self):
        w = ClosedLoopWorkload(clients=4, requests_per_client=2, seed=11)
        assert w.initial() == w.initial()

    def test_unknown_request_completion_is_ignored(self):
        w = ClosedLoopWorkload(clients=1, requests_per_client=1, seed=0)
        w.initial()
        stray = Request(rid=999, arrival=1)
        assert w.on_completion(stray, finish_cycle=10) is None
