"""Event-loop correctness against hand-computed traces."""

import pytest

from repro.serve.cluster import Cluster, PlanService
from repro.serve.scheduler import BatchingScheduler, FIFOScheduler, make_scheduler
from repro.serve.simulator import ServeSimulator, simulate_serving
from repro.serve.slo import SLO
from repro.serve.workload import ClosedLoopWorkload, LoadGenerator, PoissonWorkload, Request


class FixedWorkload(LoadGenerator):
    """Deterministic scripted arrivals for hand-checkable traces."""

    name = "fixed"

    def __init__(self, requests):
        self._requests = list(requests)

    def initial(self):
        return list(self._requests)


def _cluster(total=4, group=4, latency=1000, input_load=200, model="m"):
    svc = PlanService(
        model, "traditional", group,
        latency_cycles=latency, input_load_cycles=input_load,
    )
    return Cluster(total_cores=total, group_cores=group, services={model: svc})


class TestHandComputedTraces:
    def test_two_requests_one_replica_fifo(self):
        """r0 at 10 runs [10, 1010); r1 at 20 waits, runs [1010, 2010)."""
        cluster = _cluster(total=4, group=4, latency=1000)
        workload = FixedWorkload([Request(0, 10, "m"), Request(1, 20, "m")])
        result = ServeSimulator(cluster, FIFOScheduler(), workload).run()

        by_rid = {r.rid: r for r in result.records}
        assert (by_rid[0].start, by_rid[0].finish) == (10, 1010)
        assert (by_rid[1].start, by_rid[1].finish) == (1010, 2010)
        assert by_rid[0].latency == 1000
        assert by_rid[1].latency == 1990
        assert by_rid[1].queue_cycles == 990
        assert result.makespan == 2000
        assert result.busy_cycles == {0: 2000}
        assert result.utilization == pytest.approx(1.0)

    def test_two_replicas_serve_concurrently(self):
        cluster = _cluster(total=8, group=4, latency=1000)
        workload = FixedWorkload([Request(0, 10, "m"), Request(1, 20, "m")])
        result = ServeSimulator(cluster, FIFOScheduler(), workload).run()
        by_rid = {r.rid: r for r in result.records}
        assert by_rid[0].replica != by_rid[1].replica
        assert by_rid[0].latency == by_rid[1].latency == 1000

    def test_batch_amortizes_input_load(self):
        """Two queued same-model requests run as one batch: 200 + 2*800 =
        1800 cycles instead of 2 x 1000."""
        cluster = _cluster(total=4, group=4, latency=1000, input_load=200)
        workload = FixedWorkload(
            [Request(0, 10, "m"), Request(1, 10, "m"), Request(2, 10, "m")]
        )
        result = ServeSimulator(cluster, BatchingScheduler(max_batch=2), workload).run()
        by_rid = {r.rid: r for r in result.records}
        # First dispatch at cycle 10 batches r0+r1 (both queued by then).
        assert by_rid[0].batch_size == 2
        assert (by_rid[0].start, by_rid[0].finish) == (10, 1810)
        assert by_rid[1].finish == 1810
        # r2 runs alone afterwards.
        assert by_rid[2].batch_size == 1
        assert (by_rid[2].start, by_rid[2].finish) == (1810, 2810)

    def test_percentiles_from_known_trace(self):
        """10 simultaneous arrivals on one replica: latencies are
        L, 2L, ..., 10L; nearest-rank p50 = 5L, p99 = 10L."""
        latency = 100
        cluster = _cluster(total=2, group=2, latency=latency, input_load=0, model="m")
        workload = FixedWorkload([Request(i, 5, "m") for i in range(10)])
        result, report = simulate_serving(
            cluster, FIFOScheduler(), workload, slo=SLO(5 * latency)
        )
        assert result.latencies() == [latency * k for k in range(1, 11)]
        assert report is not None
        assert report.p50 == 5 * latency
        assert report.p95 == 10 * latency
        assert report.p99 == 10 * latency
        # 5 of 10 latencies exceed the 500-cycle target.
        assert report.violation_rate == pytest.approx(0.5)
        goodput = 5 * 1e6 / result.makespan
        assert report.goodput_per_megacycle == pytest.approx(goodput)


class TestDeterminism:
    def test_same_seed_same_records(self):
        cluster = _cluster(total=8, group=4, latency=5000, input_load=500)
        def mk():
            return PoissonWorkload(30.0, 60, seed=7, mix={"m": 1})
        a = ServeSimulator(cluster, FIFOScheduler(), mk()).run()
        b = ServeSimulator(cluster, FIFOScheduler(), mk()).run()
        assert a.records == b.records
        assert a.busy_cycles == b.busy_cycles

    def test_all_requests_complete(self):
        cluster = _cluster(total=8, group=2, latency=3000, input_load=0)
        result = ServeSimulator(
            cluster,
            make_scheduler("sjf"),
            PoissonWorkload(100.0, 80, seed=1, mix={"m": 1}),
        ).run()
        assert result.num_requests == 80
        assert {r.rid for r in result.records} == set(range(80))


class TestClosedLoop:
    def test_population_quota_completes(self):
        cluster = _cluster(total=4, group=4, latency=2000, input_load=0)
        workload = ClosedLoopWorkload(
            clients=3, requests_per_client=4, think_cycles=1000.0, seed=5,
            mix={"m": 1},
        )
        result = ServeSimulator(cluster, FIFOScheduler(), workload).run()
        assert result.num_requests == 12

    def test_closed_loop_self_throttles(self):
        """With one replica and zero-ish think time, throughput caps at the
        service rate no matter the population."""
        latency = 1000
        cluster = _cluster(total=4, group=4, latency=latency, input_load=0)
        workload = ClosedLoopWorkload(
            clients=8, requests_per_client=5, think_cycles=1.0, seed=2, mix={"m": 1}
        )
        result = ServeSimulator(cluster, FIFOScheduler(), workload).run()
        assert result.num_requests == 40
        assert result.throughput_per_megacycle <= 1e6 / latency + 1
