"""Tests for the request-level serving simulator (repro.serve)."""
