"""Bit-exactness of the columnar serving loop against the object event loop.

The fast path (:mod:`repro.serve.fastpath`) replays the exact event
sequence of ``ServeSimulator``'s per-``Request`` loop over preallocated
int64 columns, so on any seeded workload both loops must produce *the
same simulation*: identical request records, percentiles, SLO report,
makespan, per-replica busy cycles, and time-series records (cumulative
block included).  The property test below drives both loops across every
built-in scheduler, open-loop generator, cluster family (single-chip and
pipelined MCM, with and without shared memory channels), and telemetry
state, and asserts full equality.

Eligibility is also pinned: closed-loop workloads and custom schedulers
must fall back to the object loop under ``auto`` and raise under
``force``.
"""

from __future__ import annotations

import copy
import functools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import lenet_spec
from repro.obs import clear_timeseries, disable_timeseries, enable_timeseries
from repro.obs.metrics import percentile
from repro.obs.timeseries import global_timeseries
from repro.serve import build_spec_cluster
from repro.serve.fastpath import fastpath_mode, plan_columnar
from repro.serve.pipelined import build_mcm_cluster
from repro.serve.scheduler import FIFOScheduler, make_scheduler
from repro.serve.simulator import ServeSimulator, simulate_serving
from repro.serve.slo import SLO, evaluate_slo
from repro.serve.workload import ClosedLoopWorkload, MMPPWorkload, PoissonWorkload

CLUSTER_KINDS = ("plain", "channels", "mcm", "mcm_channels")


@functools.cache
def _cluster(kind: str):
    """One shared cluster per family (plan simulation is the slow part)."""
    spec = lenet_spec()
    if kind == "plain":
        return build_spec_cluster(spec, 16, 4)
    if kind == "channels":
        return build_spec_cluster(spec, 16, 4, memory_channels=1)
    if kind == "mcm":
        return build_mcm_cluster(spec, 2, stages=2)
    if kind == "mcm_channels":
        return build_mcm_cluster(spec, 2, stages=2, memory_channels=1)
    raise AssertionError(kind)


def _make_workload(gen: str, rate: float, n: int, seed: int):
    mix = {"lenet": 1.0}
    if gen == "poisson":
        return PoissonWorkload(rate, n, seed=seed, mix=mix)
    return MMPPWorkload(rate, 8 * rate, n, seed=seed, mix=mix)


def _run(cluster, scheduler_name: str, workload, fastpath: str, ts: bool):
    """One simulation; returns (result, captured time-series records)."""
    scheduler = make_scheduler(scheduler_name, max_batch=4)
    sim = ServeSimulator(cluster, scheduler, workload, fastpath=fastpath)
    if ts:
        enable_timeseries()
    try:
        result = sim.run()
        series = copy.deepcopy(global_timeseries()) if ts else None
    finally:
        disable_timeseries()
        clear_timeseries()
    return result, series


@settings(max_examples=40, deadline=None)
@given(
    kind=st.sampled_from(CLUSTER_KINDS),
    scheduler=st.sampled_from(("fifo", "sjf", "priority", "batch")),
    gen=st.sampled_from(("poisson", "mmpp")),
    rate=st.floats(20.0, 400.0),
    n=st.integers(5, 80),
    seed=st.integers(0, 2**16),
    ts=st.booleans(),
)
def test_fastpath_matches_object_loop(kind, scheduler, gen, rate, n, seed, ts):
    cluster = _cluster(kind)
    fast, fast_series = _run(
        cluster, scheduler, _make_workload(gen, rate, n, seed), "force", ts
    )
    ref, ref_series = _run(
        cluster, scheduler, _make_workload(gen, rate, n, seed), "off", ts
    )
    assert fast.columns is not None and ref.columns is None  # distinct loops

    assert fast.records == ref.records
    assert fast.makespan == ref.makespan
    assert fast.busy_cycles == ref.busy_cycles
    lats_fast, lats_ref = fast.latencies(), ref.latencies()
    for pct in (50, 95, 99):
        assert percentile(lats_fast, pct) == percentile(lats_ref, pct)

    slo = SLO(2 * cluster.unloaded_latency("lenet"), name="equivalence")
    assert evaluate_slo(fast, slo) == evaluate_slo(ref, slo)

    # Full time-series equality — windows, per-replica depth, and the
    # cumulative block all derive from the same event stream.
    assert fast_series == ref_series


def test_summary_mode_keeps_report_and_scalars():
    cluster = _cluster("plain")
    slo = SLO(2 * cluster.unloaded_latency("lenet"), name="summary")

    def serve(records):
        workload = PoissonWorkload(100.0, 60, seed=9, mix={"lenet": 1.0})
        return simulate_serving(
            cluster, make_scheduler("fifo"), workload, slo=slo, records=records
        )

    full, full_report = serve("full")
    summary, summary_report = serve("summary")
    assert summary_report == full_report
    assert summary.num_requests == full.num_requests
    assert summary.makespan == full.makespan
    assert summary.mean_batch_size == full.mean_batch_size
    # The whole point: per-request storage is gone.
    assert summary.columns is None
    with pytest.raises(RuntimeError):
        summary.records  # noqa: B018 - property access raises


def test_closed_loop_falls_back_under_auto():
    cluster = _cluster("plain")

    def workload():
        return ClosedLoopWorkload(
            clients=4, requests_per_client=5, think_cycles=5e4,
            seed=3, mix={"lenet": 1.0},
        )

    plan, reason = plan_columnar(cluster, make_scheduler("fifo"), workload())
    assert plan is None and isinstance(reason, str)
    result = ServeSimulator(cluster, make_scheduler("fifo"), workload(), fastpath="auto").run()
    assert result.columns is None  # served by the object loop
    assert result.num_requests == 20


def test_force_raises_on_closed_loop():
    cluster = _cluster("plain")
    workload = ClosedLoopWorkload(
        clients=2, requests_per_client=3, think_cycles=5e4, seed=1, mix={"lenet": 1.0}
    )
    sim = ServeSimulator(cluster, make_scheduler("fifo"), workload, fastpath="force")
    with pytest.raises(RuntimeError):
        sim.run()


class _CustomFifo(FIFOScheduler):
    """Subclass overriding dispatch: must not inherit the index queue."""

    def next_batch(self, now):
        return super().next_batch(now)


def test_custom_scheduler_falls_back_and_force_raises():
    cluster = _cluster("plain")

    def workload():
        return PoissonWorkload(50.0, 20, seed=5, mix={"lenet": 1.0})

    plan, reason = plan_columnar(cluster, _CustomFifo(), workload())
    assert plan is None and isinstance(reason, str)
    auto = ServeSimulator(cluster, _CustomFifo(), workload(), fastpath="auto").run()
    assert auto.columns is None
    ref = ServeSimulator(cluster, FIFOScheduler(), workload(), fastpath="off").run()
    assert auto.records == ref.records  # the subclass changed nothing
    with pytest.raises(RuntimeError):
        ServeSimulator(cluster, _CustomFifo(), workload(), fastpath="force").run()


def test_fastpath_mode_resolution(monkeypatch):
    monkeypatch.delenv("REPRO_SERVE_FASTPATH", raising=False)
    assert fastpath_mode() == "auto"
    monkeypatch.setenv("REPRO_SERVE_FASTPATH", "off")
    assert fastpath_mode() == "off"
    assert fastpath_mode("force") == "force"  # explicit beats env
    monkeypatch.setenv("REPRO_SERVE_FASTPATH", "banana")
    with pytest.raises(ValueError):
        fastpath_mode()
