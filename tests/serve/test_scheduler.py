"""Dispatch-policy behavior on hand-built request queues."""

import pytest

from repro.serve.cluster import Cluster, PlanService
from repro.serve.scheduler import (
    BatchingScheduler,
    FIFOScheduler,
    PriorityScheduler,
    SJFScheduler,
    make_scheduler,
)
from repro.serve.workload import Request


def _cluster(latencies: dict[str, int]) -> Cluster:
    services = {
        name: PlanService(name, "traditional", 4, latency_cycles=lat, input_load_cycles=0)
        for name, lat in latencies.items()
    }
    return Cluster(total_cores=4, group_cores=4, services=services)


def _req(rid, arrival, model="m", priority=0):
    return Request(rid=rid, arrival=arrival, model=model, priority=priority)


class TestFIFO:
    def test_arrival_order(self):
        s = FIFOScheduler()
        for r in (_req(0, 5), _req(1, 7), _req(2, 9)):
            s.enqueue(r)
        order = [s.next_batch(10)[0].rid for _ in range(3)]
        assert order == [0, 1, 2]
        assert s.next_batch(10) == []


class TestSJF:
    def test_shortest_service_first(self):
        cluster = _cluster({"fast": 100, "slow": 1000})
        s = SJFScheduler()
        s.bind(cluster)
        s.enqueue(_req(0, 1, "slow"))
        s.enqueue(_req(1, 2, "fast"))
        s.enqueue(_req(2, 3, "slow"))
        assert [s.next_batch(5)[0].rid for _ in range(3)] == [1, 0, 2]

    def test_fifo_within_equal_service(self):
        cluster = _cluster({"m": 100})
        s = SJFScheduler()
        s.bind(cluster)
        for r in (_req(0, 3), _req(1, 1), _req(2, 2)):
            s.enqueue(r)
        assert [s.next_batch(5)[0].rid for _ in range(3)] == [1, 2, 0]

    def test_requires_bind(self):
        with pytest.raises(RuntimeError):
            SJFScheduler().enqueue(_req(0, 1))


class TestPriority:
    def test_highest_priority_first_then_fifo(self):
        s = PriorityScheduler()
        s.enqueue(_req(0, 1, priority=0))
        s.enqueue(_req(1, 2, priority=5))
        s.enqueue(_req(2, 3, priority=5))
        assert [s.next_batch(5)[0].rid for _ in range(3)] == [1, 2, 0]


class TestBatching:
    def test_batches_consecutive_same_model(self):
        s = BatchingScheduler(max_batch=3)
        for r in (_req(0, 1, "a"), _req(1, 2, "a"), _req(2, 3, "b"), _req(3, 4, "a")):
            s.enqueue(r)
        first = s.next_batch(5)
        assert [r.rid for r in first] == [0, 1]  # stops at the model change
        assert [r.rid for r in s.next_batch(5)] == [2]
        assert [r.rid for r in s.next_batch(5)] == [3]

    def test_respects_max_batch(self):
        s = BatchingScheduler(max_batch=2)
        for i in range(5):
            s.enqueue(_req(i, i, "a"))
        assert len(s.next_batch(9)) == 2
        assert len(s) == 3

    def test_rejects_bad_max_batch(self):
        with pytest.raises(ValueError):
            BatchingScheduler(max_batch=0)


class TestFactory:
    def test_known_names(self):
        for name in ("fifo", "sjf", "priority", "batch"):
            assert make_scheduler(name).name == name

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_scheduler("round-robin")
