"""Smoke tests for the repro-serve command-line entry point."""

import json

import pytest

from repro.cli import serve_main
from repro.serve.cli import main
from repro.serve.cluster import clear_service_memo


@pytest.fixture(autouse=True)
def isolated(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    clear_service_memo()
    yield
    clear_service_memo()
    from repro import obs

    obs.disable_tracing()
    obs.get_collector().clear()


class TestSingleRun:
    def test_poisson_fifo_smoke(self, capsys):
        assert main(
            ["--network", "lenet", "--cores", "8", "--group-cores", "4",
             "--requests", "40", "--rate", "5", "--seed", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "2 x 4-core" in out
        assert "p99 latency" in out
        assert "goodput" in out

    def test_batch_scheduler_and_mmpp(self, capsys):
        assert main(
            ["--network", "lenet", "--cores", "4", "--group-cores", "4",
             "--workload", "mmpp", "--scheduler", "batch", "--batch-size", "4",
             "--requests", "30", "--rate", "10"]
        ) == 0
        assert "p99 latency" in capsys.readouterr().out

    def test_closed_loop(self, capsys):
        assert main(
            ["--network", "lenet", "--cores", "4", "--group-cores", "2",
             "--workload", "closed", "--clients", "3", "--requests", "4",
             "--think", "5000"]
        ) == 0
        out = capsys.readouterr().out
        assert "SLO report" in out
        assert "replica utilization" in out

    def test_trace_and_metrics_flags(self, tmp_path, capsys):
        trace = tmp_path / "serve.jsonl"
        assert main(
            ["--network", "lenet", "--cores", "4", "--group-cores", "4",
             "--requests", "10", "--rate", "2", "--trace", str(trace), "--metrics"]
        ) == 0
        out = capsys.readouterr().out
        assert "serve.requests" in out
        lines = [json.loads(line) for line in trace.read_text().splitlines()]
        assert any(rec.get("name") == "serve.run" for rec in lines)

    def test_rejects_bad_geometry(self, capsys):
        with pytest.raises(SystemExit):
            main(["--cores", "16", "--group-cores", "3"])


class TestSweep:
    def test_sweep_fast_profile(self, capsys):
        assert main(["--sweep", "--profile", "fast"]) == 0
        out = capsys.readouterr().out
        assert "Table S1" in out
        assert "traditional" in out and "structure" in out


class TestEntryPoint:
    def test_serve_main_delegates(self, capsys):
        assert serve_main(
            ["--network", "lenet", "--cores", "4", "--group-cores", "4",
             "--requests", "5", "--rate", "2"]
        ) == 0
        assert "goodput" in capsys.readouterr().out
