"""End-to-end integration tests: train -> sparsify -> plan -> simulate.

These run the entire reproduction pipeline on a small model and assert the
paper's *qualitative* claims — the properties that must hold for the
reproduction to be meaningful — rather than exact numbers.
"""

import numpy as np
import pytest

from repro.accel import ChipConfig
from repro.datasets import SyntheticImageDataset
from repro.noc import Mesh2D
from repro.nn import Dense, ReLU, Sequential
from repro.partition import build_sparsified_plan
from repro.sim import InferenceSimulator
from repro.train import SparsifyConfig, TrainConfig, Trainer, train_sparsified

NUM_CORES = 16


@pytest.fixture(scope="module")
def pipeline():
    """Train a baseline and both sparsified schemes once for all tests."""
    dataset = SyntheticImageDataset.generate(
        "integration", (1, 16, 16), num_classes=6, train_size=400, test_size=150,
        noise=1.5, max_shift=1, seed=21, flat=True,
    )
    def build():
        r = np.random.default_rng(5)
        return Sequential(
            [
                Dense(256, 128, name="fc1", rng=r),
                ReLU(),
                Dense(128, 64, name="fc2", rng=r),
                ReLU(),
                Dense(64, 6, name="fc3", rng=r),
            ],
            input_shape=(256,),
            name="integration-mlp",
        )

    model = build()
    Trainer(model, TrainConfig(epochs=10, lr=0.05)).fit(dataset)
    base_acc = model.accuracy(dataset.x_test, dataset.y_test)
    base_state = model.state_dict()

    chip = ChipConfig.table2(NUM_CORES)
    sim = InferenceSimulator(chip)
    base_plan = build_sparsified_plan(model, NUM_CORES, scheme="baseline")
    base_result = sim.simulate(base_plan)

    config = SparsifyConfig(
        lam_g=0.15,
        sparsify=TrainConfig(epochs=5, lr=0.05, weight_decay=0.0),
        finetune=TrainConfig(epochs=3, lr=0.02),
    )
    outcomes = {}
    for scheme in ("ss", "ss_mask"):
        m = build()
        m.load_state_dict(base_state)
        res = train_sparsified(m, dataset, NUM_CORES, scheme, config)
        plan = build_sparsified_plan(m, NUM_CORES, scheme=scheme)
        outcomes[scheme] = {
            "accuracy": res.accuracy,
            "plan": plan,
            "result": sim.simulate(plan),
        }
    return {
        "dataset": dataset,
        "base_acc": base_acc,
        "base_plan": base_plan,
        "base_result": base_result,
        "outcomes": outcomes,
    }


class TestPaperClaims:
    def test_baseline_trains(self, pipeline):
        assert pipeline["base_acc"] > 0.6

    def test_sparsified_reduces_traffic(self, pipeline):
        for scheme in ("ss", "ss_mask"):
            plan = pipeline["outcomes"][scheme]["plan"]
            assert plan.traffic_rate_vs(pipeline["base_plan"]) < 0.9

    def test_sparsified_speeds_up(self, pipeline):
        for scheme in ("ss", "ss_mask"):
            result = pipeline["outcomes"][scheme]["result"]
            assert result.speedup_vs(pipeline["base_result"]) > 1.0

    def test_sparsified_saves_noc_energy(self, pipeline):
        for scheme in ("ss", "ss_mask"):
            result = pipeline["outcomes"][scheme]["result"]
            assert result.comm_energy_reduction_vs(pipeline["base_result"]) > 0.1

    def test_accuracy_mostly_preserved(self, pipeline):
        for scheme in ("ss", "ss_mask"):
            assert pipeline["outcomes"][scheme]["accuracy"] >= pipeline["base_acc"] - 0.1

    def test_ss_mask_traffic_stays_local(self, pipeline):
        """The paper's central claim: SS_Mask's surviving traffic travels
        fewer hops than SS's."""
        mesh = Mesh2D.for_nodes(NUM_CORES)

        def avg_hops(plan):
            weighted = [
                lp.traffic.weighted_average_distance(mesh)
                for lp in plan.layers
                if lp.traffic.total_bytes
            ]
            return np.mean(weighted) if weighted else 0.0

        ss_hops = avg_hops(pipeline["outcomes"]["ss"]["plan"])
        mask_hops = avg_hops(pipeline["outcomes"]["ss_mask"]["plan"])
        assert mask_hops < ss_hops

    def test_ss_mask_energy_per_byte_lower(self, pipeline):
        """Shorter distances: SS_Mask spends less NoC energy per byte moved."""
        def energy_per_byte(entry):
            r = entry["result"]
            bytes_moved = r.total_traffic_bytes
            return r.noc_energy_j / bytes_moved if bytes_moved else 0.0

        ss = energy_per_byte(pipeline["outcomes"]["ss"])
        mask = energy_per_byte(pipeline["outcomes"]["ss_mask"])
        if ss and mask:
            assert mask < ss


class TestDeterminism:
    def test_simulation_deterministic(self, pipeline):
        sim = InferenceSimulator(ChipConfig.table2(NUM_CORES))
        a = sim.simulate(pipeline["base_plan"])
        b = sim.simulate(pipeline["base_plan"])
        assert a.total_cycles == b.total_cycles
        assert a.noc_energy_j == b.noc_energy_j
