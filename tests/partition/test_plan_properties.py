"""Property-based invariants of partition plans over random architectures."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.spec import SpecBuilder
from repro.partition import build_traditional_plan


@st.composite
def random_spec(draw):
    """A random small conv/dense network with chainable geometry."""
    convs = draw(st.integers(1, 3))
    b = SpecBuilder("rand", (3, 16, 16))
    for i in range(convs):
        out = draw(st.sampled_from([8, 16, 32]))
        b.conv(f"conv{i}", out, kernel=3, pad=1)
    b.dense("fc1", draw(st.sampled_from([16, 32, 64])))
    b.dense("fc2", 10)
    return b.build()


class TestPlanInvariants:
    @given(spec=random_spec(), cores=st.sampled_from([2, 4, 8, 16]))
    @settings(max_examples=25, deadline=None)
    def test_macs_conserved(self, spec, cores):
        """Splitting never changes the total work for ungrouped layers."""
        plan = build_traditional_plan(spec, cores)
        for lp in plan.layers:
            assert lp.total_macs == lp.layer.macs

    @given(spec=random_spec(), cores=st.sampled_from([2, 4, 8, 16]))
    @settings(max_examples=25, deadline=None)
    def test_output_channels_partitioned(self, spec, cores):
        plan = build_traditional_plan(spec, cores)
        for lp in plan.layers:
            covered = sum(b - a for a, b in lp.out_bounds)
            assert covered == lp.layer.out_channels

    @given(spec=random_spec(), cores=st.sampled_from([2, 4, 8]))
    @settings(max_examples=20, deadline=None)
    def test_traffic_bounded_by_full_broadcast(self, spec, cores):
        """No layer moves more than input volume x (P-1) x 2 bytes."""
        plan = build_traditional_plan(spec, cores)
        for lp in plan.layers:
            upper = lp.layer.input_volume * (cores - 1) * 2
            assert lp.traffic.total_bytes <= upper

    @given(spec=random_spec())
    @settings(max_examples=15, deadline=None)
    def test_single_core_no_traffic(self, spec):
        plan = build_traditional_plan(spec, 1)
        assert plan.total_traffic_bytes == 0

    @given(spec=random_spec(), cores=st.sampled_from([2, 4, 8]))
    @settings(max_examples=20, deadline=None)
    def test_traffic_diagonal_zero(self, spec, cores):
        plan = build_traditional_plan(spec, cores)
        for lp in plan.layers:
            assert np.all(np.diagonal(lp.traffic.bytes_matrix) == 0)
