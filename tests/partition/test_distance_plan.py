"""Tests for distance masks and plan containers."""

import numpy as np
import pytest

from repro.models import mlp_spec
from repro.noc import Mesh2D
from repro.partition import (
    build_traditional_plan,
    distance_strength_mask,
    hop_distance_matrix,
    uniform_strength,
)


class TestHopDistanceMatrix:
    def test_matches_mesh(self):
        d = hop_distance_matrix(16)
        mesh = Mesh2D.for_nodes(16)
        np.testing.assert_array_equal(d, mesh.distance_matrix())

    def test_fig6a_first_four_cores(self):
        """Fig. 6(a): distances among the first row of the 4x4 mesh."""
        d = hop_distance_matrix(16)
        np.testing.assert_array_equal(
            d[:4, :4],
            [[0, 1, 2, 3], [1, 0, 1, 2], [2, 1, 0, 1], [3, 2, 1, 0]],
        )


class TestUniformStrength:
    def test_shape_and_diagonal(self):
        s = uniform_strength(8)
        assert s.shape == (8, 8)
        assert np.all(np.diagonal(s) == 0)
        off = ~np.eye(8, dtype=bool)
        assert np.all(s[off] == 1.0)


class TestDistanceStrengthMask:
    def test_diagonal_zero(self):
        s = distance_strength_mask(16)
        assert np.all(np.diagonal(s) == 0)

    def test_monotone_in_distance(self):
        s = distance_strength_mask(16, normalize_mean=False)
        d = hop_distance_matrix(16)
        # Strictly increasing with distance for any fixed source.
        for i in range(16):
            order = np.argsort(d[i])
            sorted_strengths = s[i][order]
            assert np.all(np.diff(sorted_strengths) >= -1e-12)

    def test_mean_normalized(self):
        s = distance_strength_mask(16)
        off = ~np.eye(16, dtype=bool)
        assert np.isclose(s[off].mean(), 1.0)

    def test_exponent_sharpens(self):
        """Higher exponent concentrates strength on far pairs."""
        lin = distance_strength_mask(16, exponent=1.0)
        sharp = distance_strength_mask(16, exponent=4.0)
        d = hop_distance_matrix(16)
        far = d == d.max()
        near = d == 1
        assert sharp[far].mean() > lin[far].mean()
        assert sharp[near].mean() < lin[near].mean()

    def test_unnormalized_max_is_one(self):
        s = distance_strength_mask(16, normalize_mean=False)
        assert np.isclose(s.max(), 1.0)

    def test_bad_exponent(self):
        with pytest.raises(ValueError):
            distance_strength_mask(16, exponent=0)

    def test_single_core(self):
        assert distance_strength_mask(1).shape == (1, 1)


class TestModelParallelPlan:
    def test_totals(self):
        plan = build_traditional_plan(mlp_spec(), 16)
        assert plan.total_traffic_bytes == sum(
            lp.traffic.total_bytes for lp in plan.layers
        )
        assert plan.total_macs == sum(lp.total_macs for lp in plan.layers)

    def test_max_core_macs_at_most_total(self):
        plan = build_traditional_plan(mlp_spec(), 16)
        for lp in plan.layers:
            assert lp.max_core_macs * 16 >= lp.total_macs
            assert lp.max_core_macs <= lp.total_macs

    def test_traffic_rate_zero_baseline(self):
        plan = build_traditional_plan(mlp_spec(), 16)
        zero = build_traditional_plan(mlp_spec(), 16)
        for lp in zero.layers:
            lp.traffic.bytes_matrix[...] = 0
        assert zero.traffic_rate_vs(plan) == 0.0
        assert np.isinf(plan.traffic_rate_vs(zero))

    def test_core_count_mismatch_rejected(self):
        from repro.partition import ModelParallelPlan

        plan16 = build_traditional_plan(mlp_spec(), 16)
        with pytest.raises(ValueError):
            ModelParallelPlan(
                name="x", scheme="traditional", num_cores=4, layers=plan16.layers
            )
