"""Tests for the placement-optimization extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import mlp_spec
from repro.noc import Mesh2D
from repro.partition import (
    annealed_placement,
    apply_placement,
    build_traditional_plan,
    combined_traffic,
    greedy_placement,
    identity_placement,
    placement_cost,
)


def two_cluster_traffic(p=16, heavy=10_000):
    """Partitions 0/1 and 2/3 talk heavily; everything else is silent."""
    m = np.zeros((p, p), dtype=np.int64)
    m[0, 1] = m[1, 0] = heavy
    m[2, 3] = m[3, 2] = heavy
    return m


class TestPlacementCost:
    def test_identity_cost(self):
        mesh = Mesh2D(4, 4)
        m = two_cluster_traffic()
        cost = placement_cost(m, mesh, identity_placement(16))
        # 0-1 adjacent (1 hop) and 2-3 adjacent: 4 messages x 1 hop.
        assert cost == 4 * 10_000

    def test_bad_permutation_rejected(self):
        mesh = Mesh2D(2, 2)
        with pytest.raises(ValueError):
            placement_cost(np.zeros((4, 4)), mesh, np.array([0, 0, 1, 2]))

    def test_permutation_moves_cost(self):
        mesh = Mesh2D(4, 4)
        m = np.zeros((16, 16), dtype=np.int64)
        m[0, 15] = 1000  # corner to corner: 6 hops under identity
        identity = placement_cost(m, mesh, identity_placement(16))
        swap = identity_placement(16)
        swap[15], swap[1] = swap[1], swap[15]  # bring 15 next to 0
        assert placement_cost(m, mesh, swap) < identity


class TestGreedyPlacement:
    def test_valid_permutation(self):
        mesh = Mesh2D(4, 4)
        placement = greedy_placement(two_cluster_traffic(), mesh)
        assert sorted(placement.tolist()) == list(range(16))

    def test_heavy_pairs_adjacent(self):
        mesh = Mesh2D(4, 4)
        placement = greedy_placement(two_cluster_traffic(), mesh)
        assert mesh.hop_distance(placement[0], placement[1]) == 1
        assert mesh.hop_distance(placement[2], placement[3]) == 1

    def test_never_worse_than_worst_case(self):
        mesh = Mesh2D(4, 4)
        rng = np.random.default_rng(0)
        m = rng.integers(0, 1000, size=(16, 16))
        np.fill_diagonal(m, 0)
        greedy_cost = placement_cost(m, mesh, greedy_placement(m, mesh))
        # Compare to a few random placements.
        for seed in range(5):
            perm = np.random.default_rng(seed).permutation(16)
            assert greedy_cost <= placement_cost(m, mesh, perm) * 1.05

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            greedy_placement(np.zeros((4, 4)), Mesh2D(4, 4))


class TestAnnealedPlacement:
    def test_improves_or_matches_greedy(self):
        mesh = Mesh2D(4, 4)
        rng = np.random.default_rng(3)
        m = rng.integers(0, 1000, size=(16, 16))
        np.fill_diagonal(m, 0)
        greedy = greedy_placement(m, mesh)
        annealed = annealed_placement(m, mesh, seed=1, iterations=500)
        assert placement_cost(m, mesh, annealed) <= placement_cost(m, mesh, greedy)

    def test_deterministic_given_seed(self):
        mesh = Mesh2D(2, 2)
        m = two_cluster_traffic(4, 100)
        a = annealed_placement(m, mesh, seed=7, iterations=100)
        b = annealed_placement(m, mesh, seed=7, iterations=100)
        np.testing.assert_array_equal(a, b)


class TestApplyPlacement:
    def test_identity_is_noop(self):
        plan = build_traditional_plan(mlp_spec(), 16)
        placed = apply_placement(plan, identity_placement(16))
        for a, b in zip(plan.layers, placed.layers):
            np.testing.assert_array_equal(
                a.traffic.bytes_matrix, b.traffic.bytes_matrix
            )

    def test_total_bytes_invariant(self):
        plan = build_traditional_plan(mlp_spec(), 16)
        perm = np.random.default_rng(0).permutation(16)
        placed = apply_placement(plan, perm)
        assert placed.total_traffic_bytes == plan.total_traffic_bytes

    def test_traffic_moves_with_partitions(self):
        plan = build_traditional_plan(mlp_spec(), 16)
        perm = np.random.default_rng(1).permutation(16)
        placed = apply_placement(plan, perm)
        original = plan.layers[1].traffic.bytes_matrix
        moved = placed.layers[1].traffic.bytes_matrix
        assert moved[perm[0], perm[1]] == original[0, 1]

    def test_scheme_label_updated(self):
        plan = build_traditional_plan(mlp_spec(), 16)
        placed = apply_placement(plan, identity_placement(16))
        assert placed.scheme.endswith("+placement")

    def test_invalid_permutation(self):
        plan = build_traditional_plan(mlp_spec(), 16)
        with pytest.raises(ValueError):
            apply_placement(plan, np.zeros(16, dtype=int))

    @given(seed=st.integers(0, 20))
    @settings(max_examples=10, deadline=None)
    def test_hop_weighted_cost_matches_plan_metric(self, seed):
        """placement_cost on combined traffic == sum of per-layer weighted
        distances after apply_placement."""
        mesh = Mesh2D.for_nodes(16)
        plan = build_traditional_plan(mlp_spec(), 16)
        perm = np.random.default_rng(seed).permutation(16)
        placed = apply_placement(plan, perm)
        direct = placement_cost(combined_traffic(plan), mesh, perm)
        via_plan = sum(
            lp.traffic.weighted_average_distance(mesh) * lp.traffic.total_bytes
            for lp in placed.layers
        )
        assert direct == pytest.approx(via_plan)
