"""Tests for the traditional (baseline) parallelization scheme."""

import numpy as np
import pytest

from repro.models import get_spec, lenet_spec, mlp_spec, table3_convnet_spec
from repro.partition import build_traditional_plan
from repro.partition.traditional import grouped_needs, grouped_workloads
from repro.models.spec import LayerSpec


class TestTrafficHandComputed:
    def test_mlp_ip2_traffic(self):
        """ip2's sync moves ip1's 512 outputs: each core sends its 32 values
        to the 15 other cores at 2 B/value."""
        plan = build_traditional_plan(mlp_spec(), 16)
        ip2 = next(lp for lp in plan.layers if lp.layer.name == "ip2")
        assert ip2.traffic.total_bytes == 512 * 2 * 15
        # Per-pair volume: 32 values * 2 B.
        off = ~np.eye(16, dtype=bool)
        assert np.all(ip2.traffic.bytes_matrix[off] == 64)

    def test_first_layer_no_traffic(self):
        plan = build_traditional_plan(mlp_spec(), 16)
        assert plan.layers[0].traffic.total_bytes == 0

    def test_lenet_conv2_traffic(self):
        """conv2 consumes pool1's 20 maps of 12x12: total bytes =
        20*144*2*(P-1)."""
        plan = build_traditional_plan(lenet_spec(), 16)
        conv2 = next(lp for lp in plan.layers if lp.layer.name == "conv2")
        assert conv2.traffic.total_bytes == 20 * 144 * 2 * 15

    def test_traffic_scales_with_core_count(self):
        """ip2's broadcast scales with (P-1); ip3 (10 outputs) saturates when
        cores outnumber outputs, because output-less cores consume nothing."""
        t4 = build_traditional_plan(mlp_spec(), 4).traffic_by_layer()
        t16 = build_traditional_plan(mlp_spec(), 16).traffic_by_layer()
        assert t16["ip2"] == 5 * t4["ip2"]  # 15/3 = 5x
        # ip3: 10 consumers each receive (304 - own) values at 2 B.
        assert t16["ip3"] == 10 * (304 - 19) * 2
        assert t4["ip3"] == 4 * (304 - 76) * 2

    def test_alexnet_grouping_halves_conv_traffic(self):
        grouped = build_traditional_plan(get_spec("alexnet"), 16)
        from repro.models import alexnet_spec

        dense = build_traditional_plan(alexnet_spec(groups=False), 16)
        g2 = next(lp for lp in grouped.layers if lp.layer.name == "conv2")
        d2 = next(lp for lp in dense.layers if lp.layer.name == "conv2")
        # groups=2 on 16 cores: each map goes to 7 peers instead of 15.
        assert g2.traffic.total_bytes == pytest.approx(
            d2.traffic.total_bytes * 7 / 15
        )


class TestWorkloads:
    def test_even_macs_partition(self):
        plan = build_traditional_plan(mlp_spec(), 16)
        for lp in plan.layers:
            total = sum(w.macs for w in lp.workloads())
            assert total == lp.layer.macs

    def test_full_input_consumed_ungrouped(self):
        plan = build_traditional_plan(mlp_spec(), 16)
        ip1 = plan.layers[0]
        assert all(w.in_channels_used == 784 for w in ip1.workloads())

    def test_grouped_input_reduced(self):
        spec = table3_convnet_spec(groups=16)
        plan = build_traditional_plan(spec, 16)
        conv2 = next(lp for lp in plan.layers if lp.layer.name == "conv2")
        assert all(w.in_channels_used == 64 // 16 for w in conv2.workloads())

    def test_grouped_layer_zero_traffic_when_groups_equal_cores(self):
        spec = table3_convnet_spec(groups=16)
        plan = build_traditional_plan(spec, 16)
        conv2 = next(lp for lp in plan.layers if lp.layer.name == "conv2")
        conv3 = next(lp for lp in plan.layers if lp.layer.name == "conv3")
        assert conv2.traffic.total_bytes == 0
        assert conv3.traffic.total_bytes == 0

    def test_grouped_total_macs_reduced(self):
        base = build_traditional_plan(table3_convnet_spec(groups=1), 16)
        grouped = build_traditional_plan(table3_convnet_spec(groups=16), 16)
        assert grouped.total_macs < base.total_macs

    def test_groups_exceeding_cores_repeats(self):
        spec = table3_convnet_spec(groups=16)
        plan = build_traditional_plan(spec, 4)
        conv2 = next(lp for lp in plan.layers if lp.layer.name == "conv2")
        for w in conv2.workloads():
            assert w.repeats == 4  # 16 groups / 4 cores
        # Still zero traffic: whole groups stay on one core.
        assert conv2.traffic.total_bytes == 0


class TestGroupedNeeds:
    def layer(self, groups):
        return LayerSpec(
            name="c", kind="conv", in_shape=(8, 4, 4), out_shape=(8, 4, 4),
            kernel=3, groups=groups,
        )

    def test_ungrouped_all_true(self):
        needs = grouped_needs(self.layer(1), [(0, 4), (4, 8)])
        assert needs.all()

    def test_two_groups_block_diagonal(self):
        needs = grouped_needs(self.layer(2), [(0, 4), (4, 8)])
        assert needs[:4, 0].all() and not needs[4:, 0].any()
        assert needs[4:, 1].all() and not needs[:4, 1].any()

    def test_empty_slice_needs_nothing(self):
        needs = grouped_needs(self.layer(1), [(0, 8), (8, 8)])
        assert not needs[:, 1].any()

    def test_whole_group_multiples_allowed(self):
        # Slices of 6 = 3 whole groups (group size 2): legal, repeats=3.
        works = grouped_workloads(self.layer(4), [(0, 6), (6, 8)])
        assert works[0].repeats == 3 and works[0].out_channels == 2

    def test_straddling_slice_rejected_in_workloads(self):
        # A 3-channel slice of 2-channel groups straddles a boundary.
        with pytest.raises(ValueError):
            grouped_workloads(self.layer(4), [(0, 3), (3, 8)])


class TestPlanStructure:
    def test_layer_count(self):
        plan = build_traditional_plan(lenet_spec(), 16)
        assert [lp.layer.name for lp in plan.layers] == ["conv1", "conv2", "ip1", "ip2"]

    def test_scheme_label(self):
        assert build_traditional_plan(mlp_spec(), 4).scheme == "traditional"

    def test_traffic_by_layer(self):
        plan = build_traditional_plan(mlp_spec(), 4)
        t = plan.traffic_by_layer()
        assert t["ip1"] == 0 and t["ip2"] > 0
