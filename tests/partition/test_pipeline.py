"""Tests for the inter-layer pipeline comparison scheme."""

import pytest

from repro.accel import ChipConfig
from repro.models import get_spec, lenet_spec, vgg19_spec
from repro.models.spec import LayerSpec
from repro.noc import Mesh2D, NoCConfig
from repro.partition import (
    balanced_stage_split,
    build_pipeline_plan,
    build_traditional_plan,
)
from repro.sim import InferenceSimulator, SimConfig


def fake_layers(macs_list):
    layers = []
    for i, m in enumerate(macs_list):
        # Dense layer with in=m, out=1 -> macs == m.
        layers.append(
            LayerSpec(name=f"l{i}", kind="dense", in_shape=(m,), out_shape=(1,))
        )
    return layers


class TestBalancedStageSplit:
    def test_fewer_layers_than_stages(self):
        split = balanced_stage_split(fake_layers([10, 20, 30]), 8)
        sizes = [len(s) for s in split]
        assert sizes[:3] == [1, 1, 1]
        assert sum(sizes) == 3

    def test_more_layers_than_stages(self):
        split = balanced_stage_split(fake_layers([10] * 10), 3)
        assert all(split)  # every stage non-empty
        assert sum(len(s) for s in split) == 10

    def test_contiguity_preserved(self):
        layers = fake_layers([5, 10, 15, 20, 25])
        split = balanced_stage_split(layers, 2)
        flattened = [l for stage in split for l in stage]
        assert flattened == layers

    def test_balances_macs(self):
        """A heavy layer gets its own stage instead of dragging neighbours."""
        split = balanced_stage_split(fake_layers([100, 100, 1000, 100, 100]), 3)
        macs = [sum(l.macs for l in s) for s in split if s]
        assert max(macs) == 1000  # the heavy layer is alone at the max

    def test_empty_input(self):
        assert balanced_stage_split([], 4) == [[], [], [], []]

    def test_invalid_stage_count(self):
        with pytest.raises(ValueError):
            balanced_stage_split(fake_layers([1]), 0)


class TestPipelinePlan:
    def test_lenet_stage_assignment(self):
        plan = build_pipeline_plan(lenet_spec(), 16)
        assert plan.occupied_stages == 4  # 4 compute layers
        assert len(plan.stages) == 16

    def test_vgg19_fills_all_stages(self):
        plan = build_pipeline_plan(vgg19_spec(), 16)
        assert plan.occupied_stages == 16

    def test_adjacent_stage_cores_adjacent(self):
        plan = build_pipeline_plan(vgg19_spec(), 16)
        mesh = Mesh2D.for_nodes(16)
        for a, b in zip(plan.stages, plan.stages[1:]):
            assert mesh.hop_distance(a.core, b.core) == 1

    def test_imbalance_above_one_for_real_nets(self):
        """The paper's §II.B claim: heterogeneous layers don't balance."""
        chip = ChipConfig.table2(16)
        plan = build_pipeline_plan(get_spec("alexnet"), 16)
        assert plan.imbalance(chip.core_model()) > 1.5

    def test_single_pass_worse_than_intra_layer(self):
        """Pipelining cannot beat intra-layer partitioning on single-pass
        latency: stages run serially on one core each."""
        chip = ChipConfig.table2(16)
        for network in ("lenet", "alexnet"):
            spec = get_spec(network)
            pipeline = build_pipeline_plan(spec, 16)
            lat_pipe = pipeline.single_pass_latency(
                chip.core_model(), chip.mesh, chip.noc
            )
            result = InferenceSimulator(
                chip, SimConfig(include_input_load=False)
            ).simulate(build_traditional_plan(spec, 16))
            assert lat_pipe > result.total_cycles

    def test_steady_interval_at_most_latency(self):
        chip = ChipConfig.table2(16)
        plan = build_pipeline_plan(get_spec("convnet"), 16)
        interval = plan.steady_state_interval(chip.core_model(), chip.mesh, chip.noc)
        latency = plan.single_pass_latency(chip.core_model(), chip.mesh, chip.noc)
        assert interval <= latency

    def test_transfer_cycles_zero_bytes(self):
        assert (
            build_pipeline_plan(lenet_spec(), 4).transfer_cycles(0, 1, NoCConfig())
            == 0
        )

    def test_transfer_cycles_scale_with_bytes(self):
        cfg = NoCConfig()
        plan = build_pipeline_plan(lenet_spec(), 4)
        small = plan.transfer_cycles(1_000, 1, cfg)
        large = plan.transfer_cycles(100_000, 1, cfg)
        assert large > 10 * small


class TestSnakePlacement:
    def test_snake_covers_all_nodes(self):
        from repro.models import vgg19_spec

        for cores in (8, 16, 32):
            plan = build_pipeline_plan(vgg19_spec(), cores)
            assert sorted(s.core for s in plan.stages) == list(range(cores))

    def test_rectangular_mesh_adjacency(self):
        from repro.models import vgg19_spec

        plan = build_pipeline_plan(vgg19_spec(), 8)  # 4x2 mesh
        mesh = Mesh2D.for_nodes(8)
        for a, b in zip(plan.stages, plan.stages[1:]):
            assert mesh.hop_distance(a.core, b.core) == 1
