"""Tests for the communication-aware sparsified scheme."""

import numpy as np
import pytest

from repro.models import build_lenet, build_mlp
from repro.partition import (
    build_sparsified_plan,
    build_traditional_plan,
    layer_block_partitions,
    sparsified_needs,
)
from repro.models.spec import LayerSpec, NetworkSpec


class TestSparsifiedNeeds:
    def conv_layer(self):
        return LayerSpec(
            name="c", kind="conv", in_shape=(8, 4, 4), out_shape=(8, 4, 4),
            kernel=3, pad=1,
        )

    def test_dense_weight_pattern(self):
        layer = LayerSpec(name="d", kind="dense", in_shape=(8,), out_shape=(4,))
        w = np.zeros((8, 4))
        w[0, 0] = 1.0  # feature 0 feeds consumer slice 0
        w[5, 3] = 1.0  # feature 5 feeds consumer slice 1
        needs = sparsified_needs(layer, w, [(0, 2), (2, 4)])
        assert needs[0, 0] and not needs[0, 1]
        assert needs[5, 1] and not needs[5, 0]
        assert not needs[1].any()

    def test_conv_weight_pattern(self):
        layer = self.conv_layer()
        w = np.zeros((8, 8, 3, 3))
        w[0, 3, 1, 1] = 0.5  # output 0 (core 0) uses input channel 3
        needs = sparsified_needs(layer, w, [(0, 4), (4, 8)])
        assert needs[3, 0]
        assert not needs[3, 1]
        assert needs[:, 1].sum() == 0

    def test_tolerance(self):
        layer = self.conv_layer()
        w = np.full((8, 8, 3, 3), 1e-6)
        assert not sparsified_needs(layer, w, [(0, 8)], tol=1e-3).any()
        assert sparsified_needs(layer, w, [(0, 8)], tol=0.0).all()

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            sparsified_needs(self.conv_layer(), np.zeros((4, 4, 3, 3)), [(0, 8)])


class TestLayerBlockPartitions:
    def test_excludes_first_layer(self):
        parts = layer_block_partitions(build_mlp(), 16)
        assert "ip1.weight" not in parts
        assert set(parts) == {"ip2.weight", "ip3.weight"}

    def test_lenet_includes_conv2_and_fcs(self):
        parts = layer_block_partitions(build_lenet(), 4)
        assert set(parts) == {"conv2.weight", "ip1.weight", "ip2.weight"}

    def test_dense_after_conv_producer_scaled(self):
        """ip1's producer bounds follow conv2's physical channel layout."""
        parts = layer_block_partitions(build_lenet(), 4)
        ip1 = parts["ip1.weight"]
        # conv2 has 50 channels -> bounds (13,13,12,12); each channel is 4x4.
        expected = [(0, 13 * 16), (13 * 16, 26 * 16), (26 * 16, 38 * 16), (38 * 16, 800)]
        assert ip1.producer_bounds == expected

    def test_partition_shapes_match_weights(self):
        model = build_lenet()
        for name, part in layer_block_partitions(model, 4).items():
            assert part.shape == model.get_parameter(name).shape

    def test_grouped_model_rejected(self):
        from repro.models import build_table3_convnet

        with pytest.raises(ValueError):
            layer_block_partitions(build_table3_convnet(groups=4), 4)


class TestBuildSparsifiedPlan:
    def test_dense_model_equals_traditional_traffic(self):
        """A dense (nothing pruned) model must reproduce the traditional plan."""
        model = build_mlp(seed=0)
        spec = NetworkSpec.from_sequential(model)
        sparsified = build_sparsified_plan(model, 16)
        traditional = build_traditional_plan(spec, 16)
        for sp, tr in zip(sparsified.layers, traditional.layers):
            np.testing.assert_array_equal(
                sp.traffic.bytes_matrix, tr.traffic.bytes_matrix
            )

    def test_pruned_block_removes_traffic(self):
        model = build_mlp(seed=0)
        parts = layer_block_partitions(model, 16)
        baseline = build_sparsified_plan(model, 16).total_traffic_bytes
        # Zero the block from producer core 0 to consumer core 5 in ip2.
        w = model.get_parameter("ip2.weight")
        part = parts["ip2.weight"]
        w.data[part.block_slices(0, 5)] = 0.0
        plan = build_sparsified_plan(model, 16)
        ip2 = next(lp for lp in plan.layers if lp.layer.name == "ip2")
        assert ip2.traffic.bytes_matrix[0, 5] == 0
        assert plan.total_traffic_bytes < baseline

    def test_fully_block_diagonal_no_traffic(self):
        model = build_mlp(seed=0)
        parts = layer_block_partitions(model, 16)
        for name, part in parts.items():
            part.apply_block_mask(
                model.get_parameter(name).data, np.eye(16, dtype=bool)
            )
        plan = build_sparsified_plan(model, 16)
        assert plan.total_traffic_bytes == 0

    def test_in_channels_used_reflects_sparsity(self):
        model = build_mlp(seed=0)
        parts = layer_block_partitions(model, 16)
        parts["ip2.weight"].apply_block_mask(
            model.get_parameter("ip2.weight").data, np.eye(16, dtype=bool)
        )
        plan = build_sparsified_plan(model, 16)
        ip2 = next(lp for lp in plan.layers if lp.layer.name == "ip2")
        # Each core now consumes only its own 32 producer features.
        assert all(w.in_channels_used == 32 for w in ip2.workloads())

    def test_first_layer_full_compute(self):
        model = build_mlp(seed=0)
        plan = build_sparsified_plan(model, 16)
        ip1 = plan.layers[0]
        assert ip1.traffic.total_bytes == 0
        assert all(w.in_channels_used == 784 for w in ip1.workloads())

    def test_nonfinite_weights_rejected(self):
        model = build_mlp(seed=0)
        model.get_parameter("ip2.weight").data[0, 0] = np.nan
        with pytest.raises(ValueError):
            build_sparsified_plan(model, 16)

    def test_traffic_rate_metric(self):
        model = build_mlp(seed=0)
        base = build_sparsified_plan(model, 16, scheme="baseline")
        assert base.traffic_rate_vs(base) == 1.0
