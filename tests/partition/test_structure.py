"""Tests for structure-level parallelization."""

import pytest

from repro.models import convnet_spec, table3_convnet_spec
from repro.partition import build_structure_plan, build_traditional_plan, with_groups


class TestWithGroups:
    def test_sets_groups(self):
        spec = with_groups(convnet_spec(), {"conv2": 16, "conv3": 16})
        assert spec.layer("conv2").groups == 16
        assert spec.layer("conv3").groups == 16
        assert spec.layer("conv1").groups == 1

    def test_name_records_transformation(self):
        spec = with_groups(convnet_spec(), {"conv2": 4})
        assert "conv2:4" in spec.name

    def test_original_untouched(self):
        base = convnet_spec()
        with_groups(base, {"conv2": 4})
        assert base.layer("conv2").groups == 1

    def test_validates_chaining(self):
        spec = with_groups(convnet_spec(), {"conv2": 8})
        spec.validate()

    def test_unknown_layer(self):
        with pytest.raises(ValueError):
            with_groups(convnet_spec(), {"conv9": 4})

    def test_non_conv_rejected(self):
        with pytest.raises(ValueError):
            with_groups(convnet_spec(), {"ip1": 4})

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError):
            with_groups(convnet_spec(), {"conv2": 7})

    def test_macs_reduced(self):
        base = convnet_spec()
        grouped = with_groups(base, {"conv2": 16, "conv3": 16})
        assert grouped.total_macs < base.total_macs


class TestBuildStructurePlan:
    def test_grouped_layers_have_zero_traffic(self):
        plan = build_structure_plan(
            convnet_spec(), 16, group_map={"conv2": 16, "conv3": 16}
        )
        traffic = plan.traffic_by_layer()
        assert traffic["conv2"] == 0
        assert traffic["conv3"] == 0
        # Un-grouped dense layers still synchronize.
        assert traffic["ip1"] > 0

    def test_scheme_label(self):
        plan = build_structure_plan(convnet_spec(), 16, group_map={"conv2": 16})
        assert plan.scheme == "structure"

    def test_pregrouped_spec(self):
        plan = build_structure_plan(table3_convnet_spec(groups=16), 16)
        assert plan.traffic_by_layer()["conv2"] == 0

    def test_partial_grouping_partial_traffic(self):
        """groups=4 on 16 cores: traffic stays within 4-core clusters."""
        full = build_traditional_plan(convnet_spec(), 16)
        partial = build_structure_plan(convnet_spec(), 16, group_map={"conv2": 4})
        f = full.traffic_by_layer()["conv2"]
        p = partial.traffic_by_layer()["conv2"]
        # Each map goes to 3 cluster peers instead of 15 cores.
        assert p == pytest.approx(f * 3 / 15)

    def test_cluster_locality(self):
        """Partially grouped traffic never crosses cluster boundaries."""
        plan = build_structure_plan(convnet_spec(), 16, group_map={"conv2": 4})
        conv2 = next(lp for lp in plan.layers if lp.layer.name == "conv2")
        m = conv2.traffic.bytes_matrix
        for src in range(16):
            for dst in range(16):
                if m[src, dst]:
                    assert src // 4 == dst // 4

    def test_speedup_monotone_in_groups(self):
        """More groups -> fewer MACs on the grouped layers."""
        macs = [
            build_structure_plan(convnet_spec(), 16, group_map={"conv2": g}).total_macs
            for g in (1, 2, 4, 8, 16)
        ]
        assert macs == sorted(macs, reverse=True)
