"""Degree plans: per-layer core subsets built on the traditional machinery."""

import numpy as np
import pytest

from repro.models.spec import LayerSpec
from repro.models.zoo import alexnet_spec, convnet_spec, lenet_spec
from repro.partition import (
    build_degree_plan,
    build_traditional_plan,
    degree_out_bounds,
    valid_degree,
)


class TestDegreeOutBounds:
    def test_pads_idle_cores_with_empty_slices(self):
        layer = lenet_spec().compute_layers()[0]
        bounds = degree_out_bounds(layer, 4, 16)
        assert len(bounds) == 16
        active = [b for b in bounds if b[1] > b[0]]
        assert len(active) == 4
        c = layer.out_channels
        assert bounds[4:] == [(c, c)] * 12

    def test_full_degree_matches_default_split(self):
        layer = lenet_spec().compute_layers()[0]
        from repro.partition.layout import default_out_bounds

        assert degree_out_bounds(layer, 16, 16) == default_out_bounds(layer, 16)

    def test_degree_out_of_range(self):
        layer = lenet_spec().compute_layers()[0]
        with pytest.raises(ValueError):
            degree_out_bounds(layer, 0, 16)
        with pytest.raises(ValueError):
            degree_out_bounds(layer, 17, 16)


class TestValidDegree:
    def test_ungrouped_always_valid(self):
        layer = convnet_spec().compute_layers()[0]
        assert layer.groups <= 1
        assert all(valid_degree(layer, d) for d in (1, 2, 3, 5, 16))

    def test_grouped_alignment(self):
        grouped = [l for l in alexnet_spec().compute_layers() if l.groups > 1]
        assert grouped, "alexnet spec should contain grouped convs"
        layer = grouped[0]
        g = layer.groups
        assert valid_degree(layer, 1)  # whole layer on one core
        assert valid_degree(layer, g)
        assert valid_degree(layer, 2 * g)
        assert not valid_degree(layer, g + 1)

    def test_negative_degree(self):
        layer = lenet_spec().compute_layers()[0]
        assert not valid_degree(layer, 0)


class TestBuildDegreePlan:
    @pytest.mark.parametrize(
        "spec_fn", [lenet_spec, convnet_spec, alexnet_spec], ids=lambda f: f.__name__
    )
    def test_all_cores_degrees_equal_traditional(self, spec_fn):
        """Every layer at num_cores: bit-identical to the traditional plan."""
        spec = spec_fn()
        layers = spec.compute_layers()
        degree = build_degree_plan(spec, 16, [16] * len(layers))
        traditional = build_traditional_plan(spec, 16)
        for dp, tp in zip(degree.layers, traditional.layers):
            assert dp.out_bounds == tp.out_bounds
            assert np.array_equal(
                dp.traffic.bytes_matrix, tp.traffic.bytes_matrix
            )

    def test_degree_one_layer_has_single_worker(self):
        spec = lenet_spec()
        n = len(spec.compute_layers())
        plan = build_degree_plan(spec, 16, [1] * n)
        for lp in plan.layers:
            working = [w for w in lp.workloads() if w.out_channels > 0]
            assert len(working) == 1

    def test_lower_degree_moves_fewer_bytes(self):
        """A 16 -> 1 funnel ships less than a 16 -> 16 broadcast."""
        spec = convnet_spec()
        n = len(spec.compute_layers())
        narrow = build_degree_plan(spec, 16, [16] + [1] * (n - 1))
        wide = build_degree_plan(spec, 16, [16] * n)
        assert (
            narrow.layers[1].traffic.total_bytes
            < wide.layers[1].traffic.total_bytes
        )

    def test_first_layer_has_no_noc_traffic(self):
        spec = lenet_spec()
        n = len(spec.compute_layers())
        plan = build_degree_plan(spec, 16, [4] + [16] * (n - 1))
        assert plan.layers[0].traffic.total_bytes == 0

    def test_wrong_degree_count(self):
        with pytest.raises(ValueError):
            build_degree_plan(lenet_spec(), 16, [16, 16])

    def test_invalid_grouped_degree_rejected(self):
        spec = alexnet_spec()
        layers = spec.compute_layers()
        degrees = [16] * len(layers)
        grouped_idx = next(i for i, l in enumerate(layers) if l.groups > 1)
        degrees[grouped_idx] = layers[grouped_idx].groups + 1
        with pytest.raises(ValueError):
            build_degree_plan(spec, 16, degrees)

    def test_engine_simulatable(self):
        """Degree plans run through the exact engine unchanged."""
        from repro.accel import ChipConfig
        from repro.sim.engine import InferenceSimulator, SimConfig

        spec = lenet_spec()
        n = len(spec.compute_layers())
        plan = build_degree_plan(spec, 16, [16, 16] + [4] * (n - 2))
        sim = InferenceSimulator(ChipConfig.table2(16), SimConfig())
        result = sim.simulate(plan)
        assert result.total_cycles > 0
