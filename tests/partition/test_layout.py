"""Tests for producer layouts and need-table traffic generation."""

import numpy as np
import pytest

from repro.models.spec import LayerSpec
from repro.partition.layout import (
    ProducerLayout,
    default_out_bounds,
    producer_layout_for,
    traffic_from_needs,
)


def conv(name, in_c, out_c, hw_in=8, hw_out=8, groups=1):
    return LayerSpec(
        name=name, kind="conv", in_shape=(in_c, hw_in, hw_in),
        out_shape=(out_c, hw_out, hw_out), kernel=3, pad=1, groups=groups,
    )


def dense(name, in_f, out_f):
    return LayerSpec(name=name, kind="dense", in_shape=(in_f,), out_shape=(out_f,))


class TestProducerLayout:
    def test_first_layer_none(self):
        assert producer_layout_for(conv("c1", 3, 16), None, None, 4) is None

    def test_conv_to_conv(self):
        prev = conv("c1", 3, 16)
        bounds = [(0, 4), (4, 8), (8, 12), (12, 16)]
        layout = producer_layout_for(conv("c2", 16, 32), prev, bounds, 4)
        assert layout.bounds == tuple(bounds)
        assert layout.values_per_index == 64  # 8x8 feature maps

    def test_conv_to_dense_scales_to_features(self):
        prev = conv("c1", 3, 16, hw_out=4)
        bounds = [(0, 4), (4, 8), (8, 12), (12, 16)]
        layer = dense("fc", 16 * 4 * 4, 10)
        layout = producer_layout_for(layer, prev, bounds, 4)
        assert layout.values_per_index == 1
        assert layout.bounds[0] == (0, 64)
        assert layout.bounds[3] == (192, 256)

    def test_dense_to_dense(self):
        prev = dense("fc1", 100, 64)
        bounds = [(0, 32), (32, 64)]
        layout = producer_layout_for(dense("fc2", 64, 10), prev, bounds, 2)
        assert layout.bounds == ((0, 32), (32, 64))

    def test_channel_mismatch_rejected(self):
        prev = conv("c1", 3, 16)
        with pytest.raises(ValueError):
            producer_layout_for(conv("c2", 99, 32), prev, [(0, 16)], 1)

    def test_feature_indivisible_rejected(self):
        prev = conv("c1", 3, 10, hw_out=3)
        with pytest.raises(ValueError):
            producer_layout_for(dense("fc", 91, 10), prev, [(0, 10)], 1)

    def test_owner_of(self):
        layout = ProducerLayout(((0, 4), (4, 8)), values_per_index=1)
        assert layout.owner_of(0) == 0
        assert layout.owner_of(7) == 1
        with pytest.raises(IndexError):
            layout.owner_of(8)


class TestTrafficFromNeeds:
    def test_all_needs_is_full_broadcast(self):
        layout = ProducerLayout(((0, 2), (2, 4)), values_per_index=16)
        needs = np.ones((4, 2), dtype=bool)
        tm = traffic_from_needs(layout, needs, bytes_per_value=2, label="t")
        # Core 0 sends its 2 channels (16 values each, 2B) to core 1.
        assert tm.bytes_matrix[0, 1] == 2 * 16 * 2
        assert tm.bytes_matrix[1, 0] == 2 * 16 * 2
        assert tm.bytes_matrix[0, 0] == 0

    def test_partial_needs(self):
        layout = ProducerLayout(((0, 2), (2, 4)), values_per_index=1)
        needs = np.zeros((4, 2), dtype=bool)
        needs[0, 1] = True  # core 1 needs channel 0 (owned by core 0)
        tm = traffic_from_needs(layout, needs, bytes_per_value=2, label="t")
        assert tm.bytes_matrix[0, 1] == 2
        assert tm.total_bytes == 2

    def test_own_channels_never_counted(self):
        layout = ProducerLayout(((0, 2), (2, 4)), values_per_index=1)
        needs = np.zeros((4, 2), dtype=bool)
        needs[0, 0] = True  # core 0 needs its own channel
        tm = traffic_from_needs(layout, needs, bytes_per_value=2, label="t")
        assert tm.total_bytes == 0

    def test_none_layout_zero_traffic(self):
        tm = traffic_from_needs(None, np.ones((8, 4), dtype=bool), 2, "t")
        assert tm.total_bytes == 0
        assert tm.num_nodes == 4

    def test_consumer_count_mismatch(self):
        layout = ProducerLayout(((0, 2), (2, 4)), values_per_index=1)
        with pytest.raises(ValueError):
            traffic_from_needs(layout, np.ones((4, 3), dtype=bool), 2, "t")


class TestDefaultOutBounds:
    def test_ungrouped_even(self):
        layer = conv("c", 16, 32)
        assert default_out_bounds(layer, 4) == [(0, 8), (8, 16), (16, 24), (24, 32)]

    def test_grouped_aligned(self):
        layer = conv("c", 16, 32, groups=4)
        bounds = default_out_bounds(layer, 4)
        assert bounds == [(0, 8), (8, 16), (16, 24), (24, 32)]

    def test_groups_less_than_cores(self):
        layer = conv("c", 16, 32, groups=2)
        bounds = default_out_bounds(layer, 4)
        # Group 0 = channels 0..16 on cores 0-1; group 1 on cores 2-3.
        assert bounds == [(0, 8), (8, 16), (16, 24), (24, 32)]

    def test_groups_more_than_cores(self):
        layer = conv("c", 16, 32, groups=8)
        bounds = default_out_bounds(layer, 4)
        assert bounds == [(0, 8), (8, 16), (16, 24), (24, 32)]

    def test_uneven_group_split_never_straddles(self):
        # 6 channels per group, 2 cores per group: slices of 3.
        layer = conv("c", 12, 12, groups=2)
        bounds = default_out_bounds(layer, 4)
        assert bounds == [(0, 3), (3, 6), (6, 9), (9, 12)]

    def test_incompatible_groups_cores(self):
        layer = conv("c", 12, 12, groups=3)
        with pytest.raises(ValueError):
            default_out_bounds(layer, 4)

    def test_indivisible_channels(self):
        layer = conv("c", 16, 30, groups=4)
        with pytest.raises(ValueError):
            default_out_bounds(layer, 4)
