"""Edge cases of the end-to-end engine: degenerate chips, rectangular
meshes, grouped specs at several scales."""

import pytest

from repro.accel import ChipConfig
from repro.models import get_spec, lenet_spec, mlp_spec, table3_convnet_spec
from repro.partition import build_traditional_plan
from repro.sim import InferenceSimulator, SimConfig


class TestSingleCoreChip:
    def test_no_communication(self):
        chip = ChipConfig.table2(1)
        plan = build_traditional_plan(mlp_spec(), 1)
        result = InferenceSimulator(chip).simulate(plan)
        assert result.comm_cycles == 0
        assert result.total_traffic_bytes == 0
        assert result.total_cycles > 0

    def test_single_core_slower_than_sixteen(self):
        one = InferenceSimulator(ChipConfig.table2(1)).simulate(
            build_traditional_plan(lenet_spec(), 1)
        )
        sixteen = InferenceSimulator(ChipConfig.table2(16)).simulate(
            build_traditional_plan(lenet_spec(), 16)
        )
        assert one.compute_cycles > sixteen.compute_cycles


class TestRectangularMeshes:
    @pytest.mark.parametrize("cores", [2, 8, 32])
    def test_non_square_chips_simulate(self, cores):
        chip = ChipConfig.table2(cores)
        plan = build_traditional_plan(lenet_spec(), cores)
        result = InferenceSimulator(chip).simulate(plan)
        assert result.total_cycles > 0
        assert result.comm_cycles > 0


class TestGroupedSpecsAcrossScales:
    @pytest.mark.parametrize("cores,groups", [(4, 16), (8, 8), (16, 4)])
    def test_grouped_conv_layers(self, cores, groups):
        """Groups below, equal to, and above the core count all simulate."""
        spec = table3_convnet_spec(groups=groups)
        chip = ChipConfig.table2(cores)
        plan = build_traditional_plan(spec, cores, scheme="structure")
        result = InferenceSimulator(chip).simulate(plan)
        assert result.total_cycles > 0

    def test_groups_above_cores_no_conv_traffic(self):
        spec = table3_convnet_spec(groups=16)
        plan = build_traditional_plan(spec, 4, scheme="structure")
        assert plan.traffic_by_layer()["conv2"] == 0


class TestCommModesLargeTraffic:
    def test_vgg19_simulates_via_scaling(self):
        """VGG19's megabyte bursts must go through the scaled-cycle path and
        produce finite, ordered results."""
        chip = ChipConfig.table2(16)
        plan = build_traditional_plan(get_spec("vgg19"), 16)
        result = InferenceSimulator(chip).simulate(plan)
        modes = {l.comm_mode for l in result.layers if l.traffic_bytes}
        assert "scaled-cycle" in modes
        assert result.total_cycles > 0
        # Conv1_2 moves the most data and must cost the most comm time.
        comm = {l.layer_name: l.comm_cycles for l in result.layers}
        assert comm["conv1_2"] == max(comm.values())

    def test_scaled_matches_analytical_within_factor(self):
        chip = ChipConfig.table2(16)
        plan = build_traditional_plan(get_spec("vgg19"), 16)
        scaled = InferenceSimulator(chip).simulate(plan)
        ana = InferenceSimulator(
            chip, SimConfig(comm_mode="analytical")
        ).simulate(plan)
        assert 0.3 < scaled.comm_cycles / ana.comm_cycles < 4.0
