"""Tests for the latency-vs-throughput deployment comparison."""

import pytest

from repro.accel import ChipConfig
from repro.models import get_spec, lenet_spec
from repro.sim import compare_deployments, single_core_latency
from repro.sim.engine import SimConfig


class TestSingleCoreLatency:
    def test_positive_and_scales_with_network(self):
        chip = ChipConfig.table2(16)
        lenet = single_core_latency(lenet_spec(), chip)
        alexnet = single_core_latency(get_spec("alexnet"), chip)
        assert 0 < lenet < alexnet

    def test_respects_grouping(self):
        """Grouped AlexNet does fewer MACs than its dense variant."""
        from repro.models import alexnet_spec

        chip = ChipConfig.table2(16)
        grouped = single_core_latency(alexnet_spec(groups=True), chip)
        dense = single_core_latency(alexnet_spec(groups=False), chip)
        assert grouped < dense

    def test_input_load_charged_by_default(self):
        """The DRAM stream of the input image is part of a single-core pass,
        exactly as the engine charges it to every partitioned run."""
        import numpy as np

        chip = ChipConfig.table2(16)
        spec = lenet_spec()
        with_load = single_core_latency(spec, chip)
        without = single_core_latency(spec, chip, include_input_load=False)
        first = spec.compute_layers()[0]
        input_bytes = int(np.prod(first.in_shape)) * chip.bytes_per_value
        assert with_load - without == chip.dram.transfer_cycles(input_bytes)
        assert with_load > without

    def test_matches_engine_input_load_accounting(self):
        """Both sides of the deployment comparison charge the identical
        scheme-independent input-load cycles."""
        from repro.partition.traditional import build_traditional_plan
        from repro.sim.engine import InferenceSimulator

        chip = ChipConfig.table2(16)
        spec = lenet_spec()
        plan = build_traditional_plan(spec, 16)
        result = InferenceSimulator(chip, SimConfig()).simulate(plan)
        delta = single_core_latency(spec, chip) - single_core_latency(
            spec, chip, include_input_load=False
        )
        assert delta == result.input_load_cycles


class TestCompareDeployments:
    @pytest.fixture(scope="class")
    def comparison(self):
        return compare_deployments(
            lenet_spec(), ChipConfig.table2(16),
            SimConfig(include_input_load=False),
        )

    def test_model_parallel_wins_latency(self, comparison):
        """The paper's QoS argument: cooperating cores answer sooner."""
        assert comparison.latency_advantage > 1.0

    def test_data_parallel_wins_throughput(self, comparison):
        """And the datacenter argument: independent inferences deliver more
        total work because no cycles go to synchronization."""
        assert comparison.throughput_advantage > 1.0

    def test_throughput_definitions(self, comparison):
        assert comparison.model_parallel_throughput == pytest.approx(
            1e6 / comparison.model_parallel_latency
        )
        assert comparison.data_parallel_throughput == pytest.approx(
            16e6 / comparison.data_parallel_latency
        )

    def test_latency_advantage_shrinks_with_comm(self):
        """On a chip with a very slow NoC the model-parallel latency edge
        shrinks (communication eats the parallel speedup)."""
        from dataclasses import replace

        fast_chip = ChipConfig.table2(16)
        slow_chip = ChipConfig.table2(16)
        slow_chip.noc = replace(slow_chip.noc, core_clock_divider=64)
        cfg = SimConfig(include_input_load=False)
        fast = compare_deployments(lenet_spec(), fast_chip, cfg)
        slow = compare_deployments(lenet_spec(), slow_chip, cfg)
        assert slow.latency_advantage < fast.latency_advantage

    def test_input_load_follows_sim_config(self):
        """compare_deployments keeps the accounting apples-to-apples: the
        data-parallel side charges the input load iff the engine does."""
        chip = ChipConfig.table2(16)
        spec = lenet_spec()
        with_load = compare_deployments(spec, chip, SimConfig())
        without = compare_deployments(
            spec, chip, SimConfig(include_input_load=False)
        )
        assert with_load.data_parallel_latency > without.data_parallel_latency
        assert with_load.model_parallel_latency > without.model_parallel_latency
