"""Tests for the end-to-end inference simulator."""

from dataclasses import replace

import pytest

from repro.accel import ChipConfig
from repro.models import lenet_spec, mlp_spec, table3_convnet_spec
from repro.partition import build_traditional_plan
from repro.sim import InferenceSimulator, SimConfig


@pytest.fixture(scope="module")
def chip():
    return ChipConfig.table2(16)


@pytest.fixture(scope="module")
def mlp_plan():
    return build_traditional_plan(mlp_spec(), 16)


class TestSimConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SimConfig(comm_mode="magic")
        with pytest.raises(ValueError):
            SimConfig(max_cycle_sim_flits=10)


class TestBasicSimulation:
    def test_result_structure(self, chip, mlp_plan):
        result = InferenceSimulator(chip).simulate(mlp_plan)
        assert result.num_cores == 16
        assert [l.layer_name for l in result.layers] == ["ip1", "ip2", "ip3"]
        assert result.total_cycles > 0

    def test_zero_traffic_layer_has_no_comm(self, chip, mlp_plan):
        result = InferenceSimulator(chip).simulate(mlp_plan)
        ip1 = result.layers[0]
        assert ip1.comm_cycles == 0
        assert ip1.comm_mode == "none"
        assert ip1.noc_energy.total_j == 0.0

    def test_comm_layers_cost_cycles_and_energy(self, chip, mlp_plan):
        result = InferenceSimulator(chip).simulate(mlp_plan)
        ip2 = result.layers[1]
        assert ip2.comm_cycles > 0
        assert ip2.noc_energy.total_j > 0

    def test_total_is_sum_of_parts(self, chip, mlp_plan):
        result = InferenceSimulator(chip).simulate(mlp_plan)
        expected = result.input_load_cycles + sum(
            l.comm_cycles + max(l.compute_cycles, l.dram_cycles)
            for l in result.layers
        )
        assert result.total_cycles == expected

    def test_core_count_mismatch(self, chip):
        plan = build_traditional_plan(mlp_spec(), 4)
        with pytest.raises(ValueError):
            InferenceSimulator(chip).simulate(plan)

    def test_input_load_toggle(self, chip, mlp_plan):
        with_load = InferenceSimulator(chip, SimConfig()).simulate(mlp_plan)
        without = InferenceSimulator(
            chip, SimConfig(include_input_load=False)
        ).simulate(mlp_plan)
        assert with_load.input_load_cycles > 0
        assert without.input_load_cycles == 0
        assert with_load.total_cycles > without.total_cycles

    def test_dram_toggle(self, chip, mlp_plan):
        base = InferenceSimulator(chip, SimConfig()).simulate(mlp_plan)
        dram = InferenceSimulator(chip, SimConfig(include_dram=True)).simulate(mlp_plan)
        assert all(l.dram_cycles == 0 for l in base.layers)
        assert any(l.dram_cycles > 0 for l in dram.layers)
        # MLP weights dominate: DRAM streaming slows it down.
        assert dram.total_cycles > base.total_cycles


class TestCommModes:
    def test_cycle_mode_used_for_small_traffic(self, chip, mlp_plan):
        result = InferenceSimulator(chip, SimConfig(comm_mode="cycle")).simulate(mlp_plan)
        assert all(l.comm_mode in ("cycle", "none") for l in result.layers)

    def test_analytical_mode(self, chip, mlp_plan):
        result = InferenceSimulator(
            chip, SimConfig(comm_mode="analytical")
        ).simulate(mlp_plan)
        assert any(l.comm_mode == "analytical" for l in result.layers)

    def test_analytical_close_to_cycle(self, chip, mlp_plan):
        cyc = InferenceSimulator(chip, SimConfig(comm_mode="cycle")).simulate(mlp_plan)
        ana = InferenceSimulator(chip, SimConfig(comm_mode="analytical")).simulate(mlp_plan)
        assert 0.3 < ana.comm_cycles / cyc.comm_cycles < 3.0

    def test_scaled_cycle_extrapolation(self, chip):
        """Force scaling on a real burst; extrapolation within 2x of exact."""
        plan = build_traditional_plan(lenet_spec(), 16)
        exact = InferenceSimulator(chip, SimConfig(comm_mode="cycle")).simulate(plan)
        scaled = InferenceSimulator(
            chip, SimConfig(comm_mode="auto", max_cycle_sim_flits=1000)
        ).simulate(plan)
        assert any(l.comm_mode == "scaled-cycle" for l in scaled.layers)
        assert 0.5 < scaled.comm_cycles / exact.comm_cycles < 2.0

    def test_clock_divider_scales_comm(self, mlp_plan):
        chip1 = ChipConfig.table2(16)
        chip1.noc = replace(chip1.noc, core_clock_divider=1)
        chip4 = ChipConfig.table2(16)
        chip4.noc = replace(chip4.noc, core_clock_divider=4)
        c1 = InferenceSimulator(chip1, SimConfig(include_input_load=False)).simulate(mlp_plan)
        c4 = InferenceSimulator(chip4, SimConfig(include_input_load=False)).simulate(mlp_plan)
        assert c4.comm_cycles == 4 * c1.comm_cycles


class TestSchemeOrdering:
    def test_structure_beats_traditional(self, chip):
        base = build_traditional_plan(table3_convnet_spec(groups=1), 16)
        grouped = build_traditional_plan(table3_convnet_spec(groups=16), 16)
        sim = InferenceSimulator(chip)
        r_base = sim.simulate(base)
        r_grouped = sim.simulate(grouped)
        assert r_grouped.speedup_vs(r_base) > 1.5
        assert r_grouped.comm_energy_reduction_vs(r_base) > 0.3

    def test_more_cores_faster_compute(self):
        plan4 = build_traditional_plan(lenet_spec(), 4)
        plan16 = build_traditional_plan(lenet_spec(), 16)
        r4 = InferenceSimulator(ChipConfig.table2(4)).simulate(plan4)
        r16 = InferenceSimulator(ChipConfig.table2(16)).simulate(plan16)
        assert r16.compute_cycles < r4.compute_cycles


class TestResultMetrics:
    def test_speedup_identity(self, chip, mlp_plan):
        r = InferenceSimulator(chip).simulate(mlp_plan)
        assert r.speedup_vs(r) == 1.0
        assert r.traffic_rate_vs(r) == 1.0
        assert r.comm_energy_reduction_vs(r) == 0.0

    def test_comm_fraction_in_range(self, chip, mlp_plan):
        r = InferenceSimulator(chip).simulate(mlp_plan)
        assert 0.0 < r.comm_fraction < 1.0

    def test_latency_ms(self, chip, mlp_plan):
        r = InferenceSimulator(chip).simulate(mlp_plan)
        assert r.latency_ms(1.0) == pytest.approx(r.total_cycles / 1e6)

    def test_summary_renders(self, chip, mlp_plan):
        text = InferenceSimulator(chip).simulate(mlp_plan).summary()
        assert "ip2" in text and "communication" in text

    def test_comm_speedup_infinite_when_zero(self, chip, mlp_plan):
        r = InferenceSimulator(chip).simulate(mlp_plan)
        silent = InferenceSimulator(chip).simulate(mlp_plan)
        for layer in silent.layers:
            layer.comm_cycles = 0
        assert silent.comm_speedup_vs(r) == float("inf")
