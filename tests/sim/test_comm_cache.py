"""Persistent drain-time memoization in the inference engine.

The memo layer must be invisible in the numbers (warm runs reproduce cold
runs exactly), keyed so that *any* change to the network or the traffic
invalidates the entry, and robust to corrupt cache files.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

import repro.sim.engine as engine_mod
from repro.experiments import cache
from repro.models import get_spec
from repro.noc import Mesh2D, NoCConfig, TrafficMatrix, uniform_random_traffic
from repro.partition import build_traditional_plan
from repro.sim.engine import InferenceSimulator, SimConfig, drain_memo_key


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    return tmp_path


@pytest.fixture(scope="module")
def plan():
    return build_traditional_plan(get_spec("lenet"), 16)


def timeline_numbers(result):
    return [
        (t.layer_name, t.compute_cycles, t.comm_cycles, t.flit_hops, t.noc_energy)
        for t in result.layers
    ]


class TestWarmRuns:
    def test_warm_run_is_identical(self, cache_dir, chip16, plan):
        sim = InferenceSimulator(chip16, SimConfig())
        cold = sim.simulate(plan)
        assert list(cache_dir.glob("noc-drain-*.json")), "cold run wrote no entries"
        warm = sim.simulate(plan)
        assert timeline_numbers(cold) == timeline_numbers(warm)

    def test_warm_run_skips_cycle_simulation(self, cache_dir, chip16, plan, monkeypatch):
        sim = InferenceSimulator(chip16, SimConfig())
        sim.simulate(plan)

        def boom(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("warm run must not construct a NoCSimulator")

        monkeypatch.setattr(engine_mod, "NoCSimulator", boom)
        sim.simulate(plan)  # served entirely from the memo

    def test_memo_matches_uncached(self, cache_dir, chip16, plan):
        cached = InferenceSimulator(chip16, SimConfig()).simulate(plan)
        warm = InferenceSimulator(chip16, SimConfig()).simulate(plan)
        uncached = InferenceSimulator(
            chip16, SimConfig(comm_cache=False)
        ).simulate(plan)
        assert timeline_numbers(cached) == timeline_numbers(uncached)
        assert timeline_numbers(warm) == timeline_numbers(uncached)

    def test_disabled_cache_writes_nothing(self, cache_dir, chip16, plan):
        InferenceSimulator(chip16, SimConfig(comm_cache=False)).simulate(plan)
        assert not list(cache_dir.glob("noc-drain-*.json"))


class TestMemoCounters:
    """SimulationResult surfaces how many drains came from the memo."""

    def test_cold_run_is_all_misses(self, cache_dir, chip16, plan):
        cold = InferenceSimulator(chip16, SimConfig()).simulate(plan)
        assert cold.drain_memo_hits == 0
        assert cold.drain_memo_misses > 0
        assert cold.drain_memo_hit_rate == 0.0

    def test_warm_run_is_all_hits(self, cache_dir, chip16, plan):
        sim = InferenceSimulator(chip16, SimConfig())
        cold = sim.simulate(plan)
        warm = sim.simulate(plan)
        assert warm.drain_memo_misses == 0
        assert warm.drain_memo_hits == cold.drain_memo_misses
        assert warm.drain_memo_hit_rate == 1.0

    def test_disabled_cache_counts_nothing(self, cache_dir, chip16, plan):
        result = InferenceSimulator(chip16, SimConfig(comm_cache=False)).simulate(plan)
        assert result.drain_memo_hits == 0
        assert result.drain_memo_misses == 0
        assert result.drain_memo_hit_rate == 0.0


class TestKeying:
    def test_key_is_deterministic(self, cache_dir):
        mesh = Mesh2D(4, 4)
        traffic = uniform_random_traffic(16, 10_000, seed=5)
        assert drain_memo_key(mesh, NoCConfig(), traffic) == drain_memo_key(
            mesh, NoCConfig(), traffic
        )

    def test_every_noc_field_changes_key(self, cache_dir):
        mesh = Mesh2D(4, 4)
        traffic = uniform_random_traffic(16, 10_000, seed=5)
        base_cfg = NoCConfig()
        base = drain_memo_key(mesh, base_cfg, traffic)
        for field in dataclasses.fields(NoCConfig):
            value = getattr(base_cfg, field.name)
            bumped = value * 2 if isinstance(value, (int, float)) else value
            changed = dataclasses.replace(base_cfg, **{field.name: bumped})
            assert drain_memo_key(mesh, changed, traffic) != base, field.name

    def test_mesh_shape_changes_key(self, cache_dir):
        traffic = uniform_random_traffic(16, 10_000, seed=5)
        assert drain_memo_key(Mesh2D(4, 4), NoCConfig(), traffic) != drain_memo_key(
            Mesh2D(8, 2), NoCConfig(), traffic
        )

    def test_traffic_bytes_change_key(self, cache_dir):
        mesh = Mesh2D(4, 4)
        traffic = uniform_random_traffic(16, 10_000, seed=5)
        perturbed = TrafficMatrix(
            traffic.bytes_matrix + np.eye(16, dtype=traffic.bytes_matrix.dtype) * 0,
            label=traffic.label,
        )
        # Identical bytes -> identical key even through a fresh array object.
        assert drain_memo_key(mesh, NoCConfig(), perturbed) == drain_memo_key(
            mesh, NoCConfig(), traffic
        )
        bumped_m = traffic.bytes_matrix.copy()
        bumped_m[0, 1] += 64
        bumped = TrafficMatrix(bumped_m, label=traffic.label)
        assert drain_memo_key(mesh, NoCConfig(), bumped) != drain_memo_key(
            mesh, NoCConfig(), traffic
        )


class TestCorruptEntries:
    def _one_layer_plan(self, plan):
        """The busiest layer only — enough to exercise a single memo entry."""
        lp = max(plan.layers, key=lambda l: l.traffic.total_bytes)
        return lp

    def _corrupt_all(self, cache_dir, payload: str):
        entries = list(cache_dir.glob("noc-drain-*.json"))
        assert entries
        for path in entries:
            path.write_text(payload)
        # Mutating cache files behind the cache's back requires dropping the
        # in-process read-through memo, or loads keep serving the old values.
        cache.clear_memo()

    @pytest.mark.parametrize(
        "payload",
        [
            "{ not json",
            json.dumps([1, 2, 3]),
            json.dumps({"cycles": "many", "flit_hops": 3, "energy": {}}),
            json.dumps({"cycles": 10}),
            json.dumps(
                {
                    "cycles": 10,
                    "flit_hops": 3,
                    "energy": {"buffer_writes": 1},  # missing counters
                }
            ),
        ],
    )
    def test_corrupt_entry_falls_back_to_simulation(
        self, cache_dir, chip16, plan, payload
    ):
        sim = InferenceSimulator(chip16, SimConfig())
        cold = sim.simulate(plan)
        self._corrupt_all(cache_dir, payload)
        recovered = sim.simulate(plan)
        assert timeline_numbers(recovered) == timeline_numbers(cold)
        # The bad entries were overwritten with valid ones.
        for path in cache_dir.glob("noc-drain-*.json"):
            data = json.loads(path.read_text())
            assert isinstance(data["cycles"], int)

    def test_load_json_rejects_non_dict(self, cache_dir):
        cache.save_json("probe", {"x": 1})
        (cache_dir / "probe.json").write_text("[]")
        cache.clear_memo()
        assert cache.load_json("probe") is None


class TestAnalyticalMemo:
    """The memoized analytical estimate rides in the same drain entries."""

    def test_estimate_matches_uncached(self, cache_dir, chip16):
        from repro.noc import estimate_drain_cycles
        from repro.sim.engine import memoized_drain_estimate

        tm = uniform_random_traffic(16, 50_000, seed=5)
        mesh, noc = Mesh2D(4, 4), NoCConfig()
        got = memoized_drain_estimate(mesh, noc, tm)
        assert got == estimate_drain_cycles(tm, mesh, noc)
        # Second call is a pure cache read and returns the same estimate.
        assert memoized_drain_estimate(mesh, noc, tm) == got

    def test_estimate_stored_in_drain_entry(self, cache_dir):
        from repro.sim.engine import memoized_drain_estimate

        tm = uniform_random_traffic(16, 10_000, seed=6)
        mesh, noc = Mesh2D(4, 4), NoCConfig()
        est = memoized_drain_estimate(mesh, noc, tm)
        key = drain_memo_key(mesh, noc, tm)
        raw = json.loads(
            next(cache_dir.glob(f"{key}.json")).read_text()
        )["analytical"]
        assert raw == {
            "source_bound": est.source_bound,
            "sink_bound": est.sink_bound,
            "link_bound": est.link_bound,
            "head_latency": est.head_latency,
        }

    def test_cycle_sim_writes_analytical_twin(self, cache_dir, chip16, plan):
        """An engine cycle run leaves the analytical estimate in the memo."""
        from repro.obs import METRICS

        sim = InferenceSimulator(chip16, SimConfig())
        sim.simulate(plan)
        from repro.sim.engine import memoized_drain_estimate

        burst = next(
            lp.traffic for lp in plan.layers if lp.traffic.total_bytes > 0
        )
        before = METRICS.counter("cache.drain_analytical.hit")
        memoized_drain_estimate(chip16.mesh, chip16.noc, burst)
        assert METRICS.counter("cache.drain_analytical.hit") == before + 1

    def test_legacy_entry_upgraded_in_place(self, cache_dir, chip16, plan):
        """Entries written before the analytical field miss once, then hit."""
        from repro.sim.engine import memoized_drain_estimate

        tm = uniform_random_traffic(16, 20_000, seed=7)
        mesh, noc = Mesh2D(4, 4), NoCConfig()
        key = drain_memo_key(mesh, noc, tm)
        # Fake a pre-upgrade cycle-only entry.
        cache.save_json(key, {"cycles": 123, "flit_hops": 456})
        est = memoized_drain_estimate(mesh, noc, tm)
        data = cache.load_json(key)
        assert data["cycles"] == 123 and data["flit_hops"] == 456
        assert data["analytical"]["source_bound"] == est.source_bound

    def test_corrupt_analytical_recomputed(self, cache_dir):
        from repro.sim.engine import memoized_drain_estimate

        tm = uniform_random_traffic(16, 20_000, seed=8)
        mesh, noc = Mesh2D(4, 4), NoCConfig()
        key = drain_memo_key(mesh, noc, tm)
        cache.save_json(key, {"analytical": {"source_bound": "bad"}})
        est = memoized_drain_estimate(mesh, noc, tm)
        from repro.noc import estimate_drain_cycles

        assert est == estimate_drain_cycles(tm, mesh, noc)
