"""Unit tests for result-record arithmetic using synthetic timelines."""

import pytest

from repro.noc.energy import EnergyBreakdown
from repro.sim import LayerTimeline, SimulationResult


def timeline(name="l", compute=100, comm=50, dram=0, traffic=1000, energy=1e-9):
    return LayerTimeline(
        layer_name=name,
        compute_cycles=compute,
        comm_cycles=comm,
        dram_cycles=dram,
        traffic_bytes=traffic,
        flit_hops=traffic // 64,
        noc_energy=EnergyBreakdown(energy, 0, 0, 0),
        compute_energy_j=2e-9,
        dram_energy_j=0.0,
        comm_mode="cycle",
    )


def result(layers, input_load=0):
    return SimulationResult(
        model_name="m", scheme="s", num_cores=16, layers=layers,
        input_load_cycles=input_load,
    )


class TestLayerTimeline:
    def test_total_cycles_comm_plus_compute(self):
        assert timeline(compute=100, comm=50).total_cycles == 150

    def test_dram_overlaps_compute(self):
        assert timeline(compute=100, comm=0, dram=300).total_cycles == 300
        assert timeline(compute=400, comm=0, dram=300).total_cycles == 400


class TestSimulationResult:
    def test_totals(self):
        r = result([timeline(), timeline(compute=200, comm=100)], input_load=25)
        assert r.total_cycles == 25 + 150 + 300
        assert r.comm_cycles == 150
        assert r.compute_cycles == 300

    def test_comm_fraction(self):
        r = result([timeline(compute=100, comm=100)])
        assert r.comm_fraction == 0.5

    def test_comm_fraction_empty(self):
        assert result([]).comm_fraction == 0.0

    def test_speedup_and_reduction(self):
        base = result([timeline(compute=100, comm=100, energy=4e-9)])
        fast = result([timeline(compute=100, comm=0, traffic=0, energy=1e-9)])
        assert fast.speedup_vs(base) == 2.0
        assert fast.comm_energy_reduction_vs(base) == pytest.approx(0.75)
        assert fast.traffic_rate_vs(base) == 0.0

    def test_traffic_rate_zero_baseline(self):
        base = result([timeline(traffic=0)])
        some = result([timeline(traffic=10)])
        assert base.traffic_rate_vs(base) == 0.0
        assert some.traffic_rate_vs(base) == float("inf")

    def test_speedup_zero_cycles_rejected(self):
        with pytest.raises(ValueError):
            result([]).speedup_vs(result([timeline()]))

    def test_energy_totals(self):
        r = result([timeline(energy=3e-9)])
        assert r.noc_energy_j == pytest.approx(3e-9)
        assert r.total_energy_j == pytest.approx(3e-9 + 2e-9)

    def test_comm_speedup(self):
        base = result([timeline(comm=100)])
        half = result([timeline(comm=50)])
        assert half.comm_speedup_vs(base) == 2.0
