"""Tests for the trainable model builders."""

import numpy as np
import pytest

from repro.models import (
    build_caffenet_scaled,
    build_convnet,
    build_lenet,
    build_mlp,
    build_model,
    build_table3_convnet,
)


class TestBuilders:
    def test_mlp_forward(self, rng):
        model = build_mlp()
        out = model.forward(rng.normal(size=(4, 784)))
        assert out.shape == (4, 10)

    def test_mlp_paper_widths(self):
        model = build_mlp()
        assert model.get_parameter("ip1.weight").shape == (784, 512)
        assert model.get_parameter("ip2.weight").shape == (512, 304)
        assert model.get_parameter("ip3.weight").shape == (304, 10)

    def test_lenet_forward(self, rng):
        out = build_lenet().forward(rng.normal(size=(2, 1, 28, 28)))
        assert out.shape == (2, 10)

    def test_convnet_forward(self, rng):
        out = build_convnet().forward(rng.normal(size=(2, 3, 32, 32)))
        assert out.shape == (2, 10)

    def test_caffenet_forward(self, rng):
        model = build_caffenet_scaled()
        out = model.forward(rng.normal(size=(2, 3, 32, 32)))
        assert out.shape == (2, 10)

    def test_caffenet_has_five_convs_three_fcs(self):
        model = build_caffenet_scaled()
        from repro.models import NetworkSpec
        spec = NetworkSpec.from_sequential(model)
        kinds = [l.kind for l in spec.compute_layers()]
        assert kinds == ["conv"] * 5 + ["dense"] * 3

    def test_table3_groups_variants(self, rng):
        for groups in (1, 4, 16):
            model = build_table3_convnet(groups=groups)
            out = model.forward(rng.normal(size=(1, 3, 32, 32)))
            assert out.shape == (1, 10)

    def test_table3_group_32_supported(self):
        model = build_table3_convnet(groups=32)
        assert model.layers[3].groups == 32

    def test_table3_wide_is_wider(self):
        base = build_table3_convnet(wide=False)
        wide = build_table3_convnet(wide=True)
        assert wide.num_parameters > base.num_parameters

    def test_table3_bad_groups(self):
        with pytest.raises(ValueError):
            build_table3_convnet(groups=7)

    def test_seed_reproducibility(self, rng):
        a = build_lenet(seed=5)
        b = build_lenet(seed=5)
        x = rng.normal(size=(1, 1, 28, 28))
        np.testing.assert_array_equal(a.forward(x), b.forward(x))

    def test_build_model_registry(self):
        assert build_model("mlp").name == "mlp"
        with pytest.raises(ValueError):
            build_model("transformer")
