"""Tests of the full-scale network specs against published geometry."""

import pytest

from repro.models import (
    alexnet_spec,
    caffenet_spec,
    convnet_spec,
    get_spec,
    lenet_spec,
    mlp_spec,
    table3_convnet_spec,
    vgg19_spec,
)


class TestMLP:
    def test_layer_sizes(self):
        spec = mlp_spec()
        assert [l.out_shape[0] for l in spec.compute_layers()] == [512, 304, 10]

    def test_param_count(self):
        # 784*512 + 512*304 + 304*10 weights
        assert mlp_spec().total_weights == 784 * 512 + 512 * 304 + 304 * 10


class TestLeNet:
    def test_geometry(self):
        spec = lenet_spec()
        assert spec.layer("conv1").out_shape == (20, 24, 24)
        assert spec.layer("pool2").out_shape == (50, 4, 4)
        assert spec.layer("ip1").in_shape == (800,)

    def test_macs_order_of_magnitude(self):
        # Caffe LeNet is ~2.3 MMACs per inference.
        assert 2e6 < lenet_spec().total_macs < 3e6


class TestConvNet:
    def test_cifar10_quick_geometry(self):
        spec = convnet_spec()
        assert spec.layer("conv1").out_shape == (32, 32, 32)
        assert spec.layer("conv3").out_shape[0] == 64
        assert spec.layer("ip2").out_shape == (10,)


class TestAlexNet:
    def test_published_mac_count(self):
        # AlexNet with grouping is ~0.7 GMACs (1.4 GFLOPs).
        macs = alexnet_spec().total_macs
        assert 6e8 < macs < 9e8

    def test_published_weight_count(self):
        # ~61 M parameters.
        weights = alexnet_spec().total_weights
        assert 5.5e7 < weights < 6.5e7

    def test_conv_geometry(self):
        spec = alexnet_spec()
        assert spec.layer("conv1").out_shape == (96, 55, 55)
        assert spec.layer("pool2").out_shape == (256, 13, 13)
        assert spec.layer("ip1").in_shape == (256 * 6 * 6,)

    def test_grouping(self):
        spec = alexnet_spec()
        assert spec.layer("conv2").groups == 2
        assert spec.layer("conv3").groups == 1
        assert spec.layer("conv4").groups == 2

    def test_dense_variant(self):
        spec = alexnet_spec(groups=False)
        assert all(l.groups == 1 for l in spec.compute_layers())
        assert spec.total_macs > alexnet_spec().total_macs

    def test_caffenet_is_grouped_alexnet(self):
        a, c = alexnet_spec(), caffenet_spec()
        assert c.name == "caffenet"
        assert c.total_macs == a.total_macs


class TestVGG19:
    def test_published_counts(self):
        spec = vgg19_spec()
        # ~19.6 GMACs and ~144 M parameters.
        assert 1.9e10 < spec.total_macs < 2.0e10
        assert 1.40e8 < spec.total_weights < 1.46e8

    def test_sixteen_conv_layers(self):
        convs = [l for l in vgg19_spec().compute_layers() if l.kind == "conv"]
        assert len(convs) == 16

    def test_block_shapes(self):
        spec = vgg19_spec()
        assert spec.layer("conv1_1").out_shape == (64, 224, 224)
        assert spec.layer("conv5_4").out_shape == (512, 14, 14)
        assert spec.layer("ip1").in_shape == (512 * 7 * 7,)


class TestTable3Spec:
    def test_base_widths(self):
        spec = table3_convnet_spec(wide=False)
        widths = [l.out_shape[0] for l in spec.compute_layers() if l.kind == "conv"]
        assert widths == [64, 128, 256]

    def test_wide_widths(self):
        spec = table3_convnet_spec(wide=True)
        widths = [l.out_shape[0] for l in spec.compute_layers() if l.kind == "conv"]
        assert widths == [64, 160, 320]

    def test_grouping_applied(self):
        spec = table3_convnet_spec(groups=16)
        assert spec.layer("conv2").groups == 16
        assert spec.layer("conv1").groups == 1

    def test_indivisible_groups_rejected(self):
        with pytest.raises(ValueError):
            table3_convnet_spec(groups=7)


class TestRegistry:
    def test_get_spec(self):
        assert get_spec("mlp").name == "mlp"

    def test_unknown(self):
        with pytest.raises(ValueError):
            get_spec("resnet")
