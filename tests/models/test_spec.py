"""Tests for architecture specs and the spec builder."""

import pytest

from repro.models import NetworkSpec, SpecBuilder, build_lenet, build_table3_convnet
from repro.models.spec import LayerSpec


class TestLayerSpec:
    def conv(self, groups=1):
        return LayerSpec(
            name="c", kind="conv", in_shape=(16, 8, 8), out_shape=(32, 8, 8),
            kernel=3, pad=1, groups=groups,
        )

    def test_conv_macs(self):
        assert self.conv().macs == 32 * 64 * 16 * 9

    def test_grouped_macs(self):
        assert self.conv(groups=4).macs == 32 * 64 * 4 * 9

    def test_conv_weight_count(self):
        assert self.conv().weight_count == 32 * 16 * 9
        assert self.conv(groups=2).weight_count == 32 * 8 * 9

    def test_dense_macs(self):
        d = LayerSpec(name="d", kind="dense", in_shape=(100,), out_shape=(10,))
        assert d.macs == 1000
        assert d.weight_count == 1000

    def test_pool_has_no_macs(self):
        p = LayerSpec(name="p", kind="pool", in_shape=(4, 8, 8), out_shape=(4, 4, 4))
        assert p.macs == 0
        assert not p.is_compute

    def test_volumes(self):
        c = self.conv()
        assert c.input_volume == 16 * 64
        assert c.output_volume == 32 * 64


class TestSpecBuilder:
    def test_chains_shapes(self):
        spec = (
            SpecBuilder("t", (3, 32, 32))
            .conv("c1", 16, kernel=5, pad=2)
            .pool("p1", 2, 2)
            .dense("fc", 10)
            .build()
        )
        assert spec.layer("c1").out_shape == (16, 32, 32)
        assert spec.layer("p1").out_shape == (16, 16, 16)
        # Dense auto-flattens.
        assert spec.layer("fc").in_shape == (16 * 16 * 16,)

    def test_validate_passes_on_built(self):
        spec = SpecBuilder("t", (1, 8, 8)).conv("c", 2, kernel=3).build()
        spec.validate()

    def test_validate_catches_breaks(self):
        spec = SpecBuilder("t", (1, 8, 8)).conv("c", 2, kernel=3).build()
        bad = LayerSpec(name="x", kind="dense", in_shape=(99,), out_shape=(2,))
        spec.layers.append(bad)
        with pytest.raises(ValueError):
            spec.validate()

    def test_window_too_big(self):
        with pytest.raises(ValueError):
            SpecBuilder("t", (1, 4, 4)).conv("c", 2, kernel=7)

    def test_compute_layers_filter(self):
        spec = (
            SpecBuilder("t", (1, 8, 8))
            .conv("c", 2, kernel=3).act("r").pool("p", 2).dense("d", 4)
            .build()
        )
        assert [l.name for l in spec.compute_layers()] == ["c", "d"]

    def test_layer_lookup_missing(self):
        spec = SpecBuilder("t", (1, 8, 8)).build()
        with pytest.raises(KeyError):
            spec.layer("nope")


class TestFromSequential:
    def test_lenet_roundtrip(self):
        model = build_lenet()
        spec = NetworkSpec.from_sequential(model)
        spec.validate()
        names = [l.name for l in spec.compute_layers()]
        assert names == ["conv1", "conv2", "ip1", "ip2"]
        assert spec.layer("conv1").kernel == 5

    def test_macs_agree_with_model(self):
        model = build_lenet()
        spec = NetworkSpec.from_sequential(model)
        assert spec.total_macs == model.total_macs()

    def test_groups_carried_over(self):
        model = build_table3_convnet(groups=4)
        spec = NetworkSpec.from_sequential(model)
        assert spec.layer("conv2").groups == 4
        assert spec.layer("conv1").groups == 1

    def test_flatten_and_pool_kinds(self):
        spec = NetworkSpec.from_sequential(build_lenet())
        kinds = {l.name: l.kind for l in spec.layers}
        assert kinds["pool1"] == "pool"
        assert kinds["flatten"] == "flatten"
