"""Tests for the LPDDR3 model and chip configuration."""

import pytest

from repro.accel import ChipConfig, ComputeEnergyModel, CoreModel, CoreWorkload, LPDDR3Model
from repro.models.spec import LayerSpec


class TestLPDDR3:
    def test_bandwidth_conversion(self):
        dram = LPDDR3Model(peak_bandwidth_gbps=6.4, streaming_efficiency=0.8,
                           clock_ghz=1.0)
        assert dram.effective_bytes_per_cycle == pytest.approx(5.12)

    def test_transfer_cycles_includes_latency(self):
        dram = LPDDR3Model()
        assert dram.transfer_cycles(1) >= dram.access_latency_ns

    def test_zero_bytes(self):
        assert LPDDR3Model().transfer_cycles(0) == 0

    def test_monotone_in_bytes(self):
        dram = LPDDR3Model()
        assert dram.transfer_cycles(10_000) < dram.transfer_cycles(100_000)

    def test_energy(self):
        dram = LPDDR3Model(energy_pj_per_byte=50.0)
        assert dram.transfer_energy_j(1000) == pytest.approx(50e-9)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LPDDR3Model().transfer_cycles(-1)

    def test_validation(self):
        with pytest.raises(ValueError):
            LPDDR3Model(peak_bandwidth_gbps=0)
        with pytest.raises(ValueError):
            LPDDR3Model(streaming_efficiency=1.5)


class TestComputeEnergy:
    def test_workload_energy_positive(self):
        layer = LayerSpec(name="d", kind="dense", in_shape=(64,), out_shape=(32,))
        work = CoreWorkload(layer=layer, out_channels=32, in_channels_used=64)
        model = ComputeEnergyModel()
        assert model.workload_energy_j(work, CoreModel()) > 0

    def test_static_energy_scales_with_cores(self):
        model = ComputeEnergyModel()
        assert model.static_energy_j(1000, 32) == pytest.approx(
            2 * model.static_energy_j(1000, 16)
        )


class TestChipConfig:
    def test_table2_factory(self):
        chip = ChipConfig.table2(16)
        assert chip.num_cores == 16
        assert chip.mesh.num_nodes == 16
        assert chip.noc.flit_bits == 512
        assert chip.core.pe_rows == 16
        assert chip.bytes_per_value == 2

    def test_rectangular_meshes(self):
        assert ChipConfig.table2(8).mesh.width == 4
        assert ChipConfig.table2(32).mesh.width == 8

    def test_mismatched_mesh_rejected(self):
        from repro.noc import Mesh2D

        with pytest.raises(ValueError):
            ChipConfig(num_cores=16, mesh=Mesh2D(2, 2))

    def test_bad_core_count(self):
        with pytest.raises(ValueError):
            ChipConfig.table2(0)
