"""Tests for the DianNao-style core timing model."""

import pytest

from repro.accel import AcceleratorConfig, CoreModel, CoreWorkload
from repro.models.spec import LayerSpec


def conv_layer(out_c=32, in_c=16, hw=8, kernel=3):
    return LayerSpec(
        name="c", kind="conv", in_shape=(in_c, hw, hw),
        out_shape=(out_c, hw, hw), kernel=kernel, pad=1,
    )


def dense_layer(in_f=256, out_f=64):
    return LayerSpec(name="d", kind="dense", in_shape=(in_f,), out_shape=(out_f,))


class TestAcceleratorConfig:
    def test_table2_defaults(self):
        cfg = AcceleratorConfig()
        assert cfg.pe_rows == 16 and cfg.pe_cols == 16
        assert cfg.macs_per_cycle == 256
        assert cfg.weight_buffer_bytes == 128 * 1024
        assert cfg.value_bytes == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(pe_rows=0)
        with pytest.raises(ValueError):
            AcceleratorConfig(mapping="magic")
        with pytest.raises(ValueError):
            AcceleratorConfig(adaptive_efficiency=0.0)


class TestCoreWorkload:
    def test_conv_macs(self):
        w = CoreWorkload(layer=conv_layer(), out_channels=8, in_channels_used=16)
        assert w.macs == 8 * 64 * 16 * 9

    def test_dense_macs(self):
        w = CoreWorkload(layer=dense_layer(), out_channels=4, in_channels_used=256)
        assert w.macs == 1024

    def test_repeats_multiply(self):
        one = CoreWorkload(layer=conv_layer(), out_channels=4, in_channels_used=4)
        two = CoreWorkload(layer=conv_layer(), out_channels=4, in_channels_used=4, repeats=2)
        assert two.macs == 2 * one.macs

    def test_weight_bytes(self):
        w = CoreWorkload(layer=conv_layer(), out_channels=8, in_channels_used=16)
        assert w.weight_bytes == 8 * 16 * 9 * 2

    def test_over_assignment_rejected(self):
        with pytest.raises(ValueError):
            CoreWorkload(layer=conv_layer(out_c=8), out_channels=16, in_channels_used=4)

    def test_repeats_over_assignment_rejected(self):
        with pytest.raises(ValueError):
            CoreWorkload(layer=conv_layer(out_c=8), out_channels=8,
                         in_channels_used=4, repeats=2)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CoreWorkload(layer=conv_layer(), out_channels=-1, in_channels_used=4)


class TestRigidMapping:
    def model(self):
        return CoreModel(AcceleratorConfig(mapping="rigid"))

    def test_conv_cycles_formula(self):
        work = CoreWorkload(layer=conv_layer(), out_channels=16, in_channels_used=16)
        # out_h*out_w*k*k*in_tiles*out_tiles = 64*9*1*1
        assert self.model().compute_cycles(work) == 64 * 9

    def test_tiling_quantization(self):
        """17 input channels cost two tiles, same as 32."""
        a = CoreWorkload(layer=conv_layer(in_c=32), out_channels=16, in_channels_used=17)
        b = CoreWorkload(layer=conv_layer(in_c=32), out_channels=16, in_channels_used=32)
        assert self.model().compute_cycles(a) == self.model().compute_cycles(b)

    def test_dense_cycles(self):
        work = CoreWorkload(layer=dense_layer(), out_channels=16, in_channels_used=256)
        assert self.model().compute_cycles(work) == 16 * 1  # 16 in-tiles, 1 out-tile

    def test_zero_work(self):
        work = CoreWorkload(layer=conv_layer(), out_channels=0, in_channels_used=16)
        assert self.model().compute_cycles(work) == 0


class TestAdaptiveMapping:
    def model(self, eff=1.0):
        return CoreModel(AcceleratorConfig(mapping="adaptive", adaptive_efficiency=eff))

    def test_tracks_macs(self):
        work = CoreWorkload(layer=conv_layer(), out_channels=16, in_channels_used=16)
        assert self.model().compute_cycles(work) == -(-work.macs // 256)

    def test_efficiency_slows(self):
        work = CoreWorkload(layer=conv_layer(), out_channels=16, in_channels_used=16)
        assert self.model(0.5).compute_cycles(work) > self.model(1.0).compute_cycles(work)

    def test_shallow_layer_beats_rigid(self):
        """1 input channel wastes 15/16 of the rigid array but not adaptive."""
        layer = conv_layer(in_c=1)
        work = CoreWorkload(layer=layer, out_channels=2, in_channels_used=1)
        rigid = CoreModel(AcceleratorConfig(mapping="rigid")).compute_cycles(work)
        adaptive = self.model().compute_cycles(work)
        assert adaptive < rigid

    def test_writeback_floor(self):
        """A 1-MAC-per-output layer cannot beat the NBout write bandwidth."""
        layer = LayerSpec(
            name="c", kind="conv", in_shape=(1, 32, 32), out_shape=(1, 32, 32),
            kernel=1,
        )
        work = CoreWorkload(layer=layer, out_channels=1, in_channels_used=1)
        # 1024 outputs at 16/cycle -> >= 64 cycles even though MACs/256 = 4.
        assert self.model().compute_cycles(work) >= 64


class TestBufferAndStreams:
    def test_weight_fits(self):
        model = CoreModel()
        small = CoreWorkload(layer=conv_layer(), out_channels=4, in_channels_used=16)
        assert model.weight_fits(small)
        big_layer = dense_layer(in_f=4096, out_f=4096)
        big = CoreWorkload(layer=big_layer, out_channels=4096, in_channels_used=4096)
        assert not model.weight_fits(big)

    def test_weight_stream_bytes(self):
        model = CoreModel()
        work = CoreWorkload(layer=dense_layer(), out_channels=64, in_channels_used=256)
        assert model.weight_stream_bytes(work) == 64 * 256 * 2

    def test_sram_traffic_positive_and_scales(self):
        model = CoreModel()
        small = CoreWorkload(layer=conv_layer(), out_channels=4, in_channels_used=16)
        large = CoreWorkload(layer=conv_layer(), out_channels=16, in_channels_used=16)
        assert 0 < model.sram_traffic_bytes(small) < model.sram_traffic_bytes(large)
