"""Parallel runs must render byte-identical tables to serial runs.

The core guarantee of ``repro.parallel``: worker count is a throughput knob,
never an output knob.  Both comparisons run cold (fresh cache directories for
each worker count), so parallelism is exercised on the compute path, not just
on cache reads.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments.cache import clear_memo
from repro.experiments.config import FAST
from repro.experiments.runner import run_all
from repro.experiments.table4 import render_table4, run_table4

CHEAP_EXPERIMENTS = ("table1", "motivation", "ablation-mapping")

# FAST's single-point lambda grid would leave the grid pmap serial; two
# points make the parallel run genuinely train in separate processes.
FAST_GRID2 = dataclasses.replace(FAST, lam_grid=(0.05, 0.1))


@pytest.fixture
def fresh_cache_factory(tmp_path, monkeypatch):
    def use(name: str):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / name))
        clear_memo()

    return use


class TestRunAllDeterminism:
    def test_workers_4_matches_serial(self, fresh_cache_factory):
        fresh_cache_factory("serial")
        serial = run_all(FAST, names=CHEAP_EXPERIMENTS, workers=1)
        fresh_cache_factory("parallel")
        parallel = run_all(FAST, names=CHEAP_EXPERIMENTS, workers=4)
        assert serial == parallel  # byte-identical rendered tables


class TestTrainingGridDeterminism:
    def test_table4_mlp_workers_2_matches_serial(self, fresh_cache_factory):
        # Cold in both cache dirs: the lambda-grid training itself runs under
        # pmap in the parallel case, and must land on identical weights,
        # accuracy, and selected operating point.
        fresh_cache_factory("serial")
        serial = render_table4(run_table4(FAST_GRID2, networks=("mlp",), workers=1))
        fresh_cache_factory("parallel")
        parallel = render_table4(run_table4(FAST_GRID2, networks=("mlp",), workers=2))
        assert serial == parallel
