"""Experiment-runner tests: neutralize host-dependent worker clamping.

``resolve_workers`` clamps to ``os.cpu_count()``; the determinism tests
compare explicit multi-worker runs against serial ones, which must spawn
real pools regardless of how small the CI box is.
"""

from __future__ import annotations

import os

import pytest


@pytest.fixture(autouse=True)
def plenty_of_cpus(monkeypatch):
    monkeypatch.setattr(os, "cpu_count", lambda: 8)
