"""Tests for the experiment cache and profiles."""

import numpy as np
import pytest

from repro.experiments.cache import (
    cache_dir,
    cached_json,
    load_state,
    save_state,
    settings_key,
)
from repro.experiments.config import FAST, PAPER, get_profile


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


class TestSettingsKey:
    def test_stable(self):
        assert settings_key("a", {"x": 1}) == settings_key("a", {"x": 1})

    def test_settings_change_key(self):
        assert settings_key("a", {"x": 1}) != settings_key("a", {"x": 2})

    def test_name_sanitized(self):
        key = settings_key("we/ird name!", {})
        assert "/" not in key and " " not in key


class TestStateCache:
    def test_roundtrip(self):
        state = {"w": np.arange(6.0).reshape(2, 3), "b": np.zeros(3)}
        save_state("k1", state)
        loaded = load_state("k1")
        np.testing.assert_array_equal(loaded["w"], state["w"])

    def test_missing(self):
        assert load_state("nope") is None

    def test_corrupt_returns_none(self):
        path = cache_dir() / "bad.npz"
        path.write_bytes(b"not a zip")
        assert load_state("bad") is None


class TestJsonCache:
    def test_computes_once(self):
        calls = []

        def compute():
            calls.append(1)
            return {"v": 42}

        assert cached_json("j1", compute) == {"v": 42}
        assert cached_json("j1", compute) == {"v": 42}
        assert len(calls) == 1


class TestProfiles:
    def test_lookup(self):
        assert get_profile("paper") is PAPER
        assert get_profile("fast") is FAST

    def test_unknown(self):
        with pytest.raises(ValueError):
            get_profile("slow")

    def test_fast_is_smaller(self):
        assert FAST.train_size < PAPER.train_size
        assert FAST.baseline.epochs < PAPER.baseline.epochs
