"""Tests for the Table I reproduction (pure geometry, no training)."""

import pytest

from repro.experiments.table1 import render_table1, run_table1


@pytest.fixture(scope="module")
def rows():
    return run_table1()


class TestTable1:
    def test_all_networks_present(self, rows):
        networks = {r.network for r in rows}
        assert networks == {"mlp", "lenet", "convnet", "alexnet", "vgg19"}

    def test_first_layers_absent(self, rows):
        """Table I has no conv1/ip1-as-first-layer entries: input comes from
        memory, not from other cores."""
        mlp_layers = [r.layer for r in rows if r.network == "mlp"]
        assert "ip1" not in mlp_layers
        alex_layers = [r.layer for r in rows if r.network == "alexnet"]
        assert "conv1" not in alex_layers

    def test_alexnet_ordering_matches_paper(self, rows):
        """Paper: conv3 > conv2 > conv4 = conv5 > ip1 > ip2 for AlexNet."""
        by_layer = {r.layer: r.bytes_moved for r in rows if r.network == "alexnet"}
        assert by_layer["conv3"] > by_layer["conv2"]
        assert by_layer["conv4"] == by_layer["conv5"]
        assert by_layer["conv2"] > by_layer["conv4"]
        assert by_layer["ip1"] > by_layer["ip2"]

    def test_network_scale_ordering(self, rows):
        """Bigger networks move more data: VGG19 > AlexNet > ConvNet > LeNet > MLP."""
        totals = {}
        for r in rows:
            totals[r.network] = totals.get(r.network, 0) + r.bytes_moved
        assert (
            totals["vgg19"] > totals["alexnet"] > totals["convnet"]
            > totals["lenet"] > totals["mlp"]
        )

    def test_within_factor_of_paper(self, rows):
        """Our convention differs by a constant factor from the paper's; each
        comparable entry should sit within ~4x of the reported value."""
        for r in rows:
            if r.paper_bytes is None:
                continue
            ratio = r.bytes_moved / r.paper_bytes
            assert 0.2 < ratio < 5.0, f"{r.network}/{r.layer}: ratio {ratio:.2f}"

    def test_paper_refs_attached(self, rows):
        referenced = [r for r in rows if r.paper_bytes is not None]
        assert len(referenced) >= 15

    def test_render(self, rows):
        text = render_table1(rows)
        assert "Table I" in text
        assert "vgg19" in text
