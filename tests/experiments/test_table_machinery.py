"""Tests of the Table III/V machinery with training stubbed out.

Patching ``train_baseline`` to return untrained models lets these tests
exercise the full plan/simulate/aggregate path deterministically in seconds;
the real training path is covered by the FAST-profile runner tests and the
benchmarks.
"""

import pytest

from repro.experiments import table3, table5
from repro.experiments.config import FAST
from repro.models import build_table3_convnet


@pytest.fixture
def stub_training(monkeypatch):
    def fake_train_baseline(network, profile, dataset=None, **kwargs):
        assert network == "table3"
        model = build_table3_convnet(seed=0, **kwargs)
        return model, 0.5  # fixed fake accuracy

    monkeypatch.setattr(table3, "train_baseline", fake_train_baseline)
    monkeypatch.setattr(table5, "train_baseline", fake_train_baseline)
    monkeypatch.setattr(table3, "dataset_for", lambda *a, **k: None)
    monkeypatch.setattr(table5, "dataset_for", lambda *a, **k: None)


class TestTable3Machinery:
    def test_rows_and_ordering(self, stub_training):
        rows = table3.run_table3(FAST)
        assert [r.variant for r in rows] == ["parallel#1", "parallel#2", "parallel#3"]
        p1, p2, p3 = rows
        assert p1.speedup == 1.0
        # Grouping must speed things up regardless of training.
        assert p2.speedup > 1.5
        assert p3.speedup > 1.5
        assert p2.comm_energy_reduction > 0.3

    def test_grouped_comm_speedup_exceeds_system_speedup(self, stub_training):
        rows = table3.run_table3(FAST)
        p2 = rows[1]
        assert p2.comm_speedup >= p2.speedup

    def test_render(self, stub_training):
        text = table3.render_table3(table3.run_table3(FAST))
        assert "parallel#2" in text and "paper" in text


class TestTable5Machinery:
    def test_speedup_grows_with_cores(self, stub_training):
        rows = table5.run_table5(FAST, core_counts=(4, 16))
        assert rows[0].cores == 4 and rows[1].cores == 16
        assert rows[1].speedup > rows[0].speedup

    def test_sublinear_scaling(self, stub_training):
        rows = table5.run_table5(FAST, core_counts=(4, 32))
        # 8x the cores never gives 8x the relative speedup (Fig. 8's shape).
        assert rows[1].speedup / rows[0].speedup < 8

    def test_paper_refs_attached(self, stub_training):
        rows = table5.run_table5(FAST, core_counts=(16,))
        assert rows[0].paper_speedup == 6.0

    def test_render(self, stub_training):
        text = table5.render_table5(table5.run_table5(FAST, core_counts=(4,)))
        assert "cores" in text
