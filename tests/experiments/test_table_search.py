"""Smoke tests of the tableSearch runner (FAST profile)."""

import pytest

from repro.experiments.config import FAST
from repro.experiments.runner import EXPERIMENTS, run_one
from repro.experiments.table_search import render_table_search, run_table_search


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


class TestTableSearch:
    def test_registered(self):
        assert "tableSearch" in EXPERIMENTS

    def test_fast_profile_rows(self):
        degree_rows, stage_rows = run_table_search(FAST)
        assert {r.model for r in degree_rows} == {"lenet", "convnet"}
        for r in degree_rows:
            # Engine-measured searched latency never worse than traditional.
            assert r.searched_cycles <= r.traditional_cycles
            assert -1.0 <= r.rank_correlation <= 1.0
            assert len(r.degrees) > 0
        assert stage_rows
        for r in stage_rows:
            # The never-worse guarantee, measured end to end.
            assert r.searched_interval <= r.balanced_interval
            assert r.interval_speedup >= 1.0
            assert r.used in ("searched", "balanced")

    def test_render_via_runner(self):
        table = run_one("tableSearch", FAST)
        assert "Table Search A" in table
        assert "Table Search B" in table
        assert "lenet" in table
