"""Smoke tests of the experiment runners using the FAST profile.

These validate plumbing end-to-end (training, caching, scheme selection,
simulation, rendering) with tiny training runs; the paper-profile numbers
are produced by the benchmark harness.
"""

import pytest

from repro.experiments.ablations import (
    run_analytical_agreement,
    run_mapping_ablation,
    run_mask_exponent_ablation,
    run_noc_sensitivity,
)
from repro.experiments.config import FAST
from repro.experiments.motivation import render_motivation, run_motivation
from repro.experiments.table4 import render_table4, run_network
from repro.experiments.table6 import run_table6
from repro.experiments.runner import EXPERIMENTS, run_one


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


class TestMotivation:
    def test_rows_and_render(self):
        rows = run_motivation()
        assert {r.network for r in rows} == {"mlp", "lenet", "convnet", "alexnet"}
        assert all(0 <= r.comm_fraction < 1 for r in rows)
        assert "AlexNet" in render_motivation(rows) or "alexnet" in render_motivation(rows)

    def test_alexnet_has_most_traffic(self):
        rows = run_motivation()
        by_net = {r.network: r.traffic_bytes for r in rows}
        assert by_net["alexnet"] == max(by_net.values())


class TestTable4MLP:
    def test_three_schemes(self):
        rows = run_network("mlp", FAST, num_cores=16)
        assert [r.scheme for r in rows] == ["baseline", "ss", "ss_mask"]
        base = rows[0]
        assert base.traffic_rate == 1.0 and base.speedup == 1.0
        for r in rows[1:]:
            assert 0.0 <= r.traffic_rate <= 1.0
            assert r.speedup >= 1.0
        assert "mlp" in render_table4(rows)

    def test_caching_speeds_second_run(self):
        import time

        t0 = time.time()
        run_network("mlp", FAST, num_cores=16)
        first = time.time() - t0
        t0 = time.time()
        run_network("mlp", FAST, num_cores=16)
        second = time.time() - t0
        assert second < first / 2


class TestTable6Small:
    def test_runs_at_four_cores(self):
        results = run_table6(FAST, core_counts=(4,))
        rows = results[4]
        assert [r.scheme for r in rows] == ["baseline", "ss", "ss_mask"]


class TestAblations:
    def test_mask_exponent(self):
        rows = run_mask_exponent_ablation(FAST, exponents=(1.0, 4.0), lam=0.3)
        assert [r.exponent for r in rows] == [1.0, 4.0]
        for r in rows:
            assert 0.0 <= r.traffic_rate <= 1.0

    def test_mapping(self):
        rows = run_mapping_ablation()
        by_key = {(r.network, r.mapping): r.total_cycles for r in rows}
        for network in ("lenet", "convnet", "alexnet"):
            assert by_key[(network, "rigid")] >= by_key[(network, "adaptive")]

    def test_noc_sensitivity(self):
        rows = run_noc_sensitivity()
        assert len(rows) == 4 * 3 * 2
        assert all(r.drain_cycles > 0 for r in rows)

    def test_analytical_agreement(self):
        rows = run_analytical_agreement()
        assert all(0.3 < r.ratio < 8 for r in rows)


class TestRunner:
    def test_unknown_experiment(self):
        with pytest.raises(ValueError):
            run_one("table99", FAST)

    def test_registry_covers_paper(self):
        assert {"table1", "table3", "table4", "table5", "table6"} <= set(EXPERIMENTS)


class TestNewAblations:
    def test_pipeline_runner(self):
        from repro.experiments.ablations import run_pipeline_ablation

        rows = run_pipeline_ablation()
        by_key = {(r.network, r.scheme): r for r in rows}
        assert by_key[("lenet", "pipeline")].single_pass_cycles > by_key[
            ("lenet", "intra-layer")
        ].single_pass_cycles

    def test_quantization_runner(self):
        from repro.experiments.ablations import run_quantization_ablation

        rows = run_quantization_ablation(FAST, networks=("mlp",))
        (row,) = rows
        assert abs(row.fixed16_accuracy - row.float_accuracy) < 0.1

    def test_placement_runner(self):
        from repro.experiments.ablations import run_placement_ablation

        rows = run_placement_ablation(FAST, lam=0.3)
        assert len(rows) == 6
        by_key = {(r.scheme, r.placement): r for r in rows}
        for scheme in ("baseline", "ss", "ss_mask"):
            assert (
                by_key[(scheme, "optimized")].avg_hop
                <= by_key[(scheme, "identity")].avg_hop + 1e-9
            )
