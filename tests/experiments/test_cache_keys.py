"""Cache-key stability: dtype must not perturb pre-existing settings hashes.

The keys pinned here were computed from the seed code (before ``TrainConfig``
grew a ``dtype`` field).  Default-dtype runs must keep minting byte-identical
keys so every existing ``.repro_cache`` artifact stays valid; non-default
dtypes must mint *different* keys so float32 weights never masquerade as the
float64 goldens.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.cache import settings_key
from repro.experiments.common import dataset_for
from repro.experiments.config import FAST
from repro.train.trainer import TrainConfig, train_settings

#: Keys minted by the seed code (FAST profile, mlp, no build kwargs).
GOLDEN_BASELINE_KEY = "baseline-mlp-6041e4698ffd"
GOLDEN_GRID_KEY = "ss-mlp-c16-8a2725feb16a"


def _baseline_key(profile) -> str:
    dataset = dataset_for("mlp", profile)
    return settings_key(
        "baseline-mlp",
        {
            "profile": profile.name,
            "train": train_settings(profile.baseline),
            "train_size": profile.train_size,
            "dataset": dataset.name,
            "seed": profile.seed,
            "build": [],
        },
    )


def _grid_key(profile) -> str:
    dataset = dataset_for("mlp", profile)
    return settings_key(
        "ss-mlp-c16",
        {
            "profile": profile.name,
            "lam": 0.1,
            "sparsify": train_settings(profile.sparsify),
            "finetune": train_settings(profile.finetune),
            "prune": profile.prune_rms_threshold,
            "train_size": profile.train_size,
            "dataset": dataset.name,
            "seed": profile.seed,
            "build": [],
        },
    )


class TestDefaultDtypeKeysUnchanged:
    def test_baseline_key_matches_seed(self, monkeypatch):
        monkeypatch.delenv("REPRO_DTYPE", raising=False)
        assert _baseline_key(FAST) == GOLDEN_BASELINE_KEY

    def test_grid_point_key_matches_seed(self, monkeypatch):
        monkeypatch.delenv("REPRO_DTYPE", raising=False)
        assert _grid_key(FAST) == GOLDEN_GRID_KEY

    def test_explicit_float64_is_still_the_default_key(self, monkeypatch):
        monkeypatch.delenv("REPRO_DTYPE", raising=False)
        cfg64 = TrainConfig(epochs=4, dtype="float64")
        cfg_default = TrainConfig(epochs=4)
        assert train_settings(cfg64) == train_settings(cfg_default)
        assert "dtype" not in train_settings(cfg_default)


class TestNonDefaultDtypeChangesKeys:
    def test_float32_field_changes_settings(self):
        cfg = TrainConfig(epochs=4, dtype="float32")
        settings = train_settings(cfg)
        assert settings["dtype"] == "float32"
        assert settings != train_settings(TrainConfig(epochs=4))

    def test_env_dtype_changes_key(self, monkeypatch):
        monkeypatch.setenv("REPRO_DTYPE", "float32")
        assert _baseline_key(FAST) != GOLDEN_BASELINE_KEY
        monkeypatch.delenv("REPRO_DTYPE")
        assert _baseline_key(FAST) == GOLDEN_BASELINE_KEY

    def test_field_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_DTYPE", "float32")
        cfg = TrainConfig(dtype="float64")
        assert cfg.resolved_dtype() == np.dtype(np.float64)
        assert "dtype" not in train_settings(cfg)

    def test_bad_env_dtype_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_DTYPE", "float16")
        with pytest.raises(ValueError, match="REPRO_DTYPE"):
            TrainConfig().resolved_dtype()

    def test_bad_field_dtype_rejected_at_construction(self):
        with pytest.raises(ValueError, match="dtype"):
            TrainConfig(dtype="bfloat16")
