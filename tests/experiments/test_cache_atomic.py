"""Atomic artifact writes: a failed save never clobbers an existing entry."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.experiments import cache
from repro.obs import METRICS


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    return tmp_path


def no_tmp_files(cache_dir) -> bool:
    return not list(cache_dir.glob("*.tmp"))


class TestAtomicJson:
    def test_save_then_load(self, cache_dir):
        cache.save_json("entry", {"x": 1})
        assert cache.load_json("entry") == {"x": 1}
        assert no_tmp_files(cache_dir)

    def test_failed_write_keeps_old_entry(self, cache_dir, monkeypatch):
        cache.save_json("entry", {"generation": 1})

        def boom(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(cache.json, "dump", boom)
        with pytest.raises(OSError, match="disk full"):
            cache.save_json("entry", {"generation": 2})
        assert cache.load_json("entry") == {"generation": 1}
        assert no_tmp_files(cache_dir)

    def test_unserializable_payload_keeps_old_entry(self, cache_dir):
        cache.save_json("entry", {"ok": True})
        with pytest.raises(TypeError):
            cache.save_json("entry", {"bad": object()})
        assert cache.load_json("entry") == {"ok": True}
        assert no_tmp_files(cache_dir)
        # The file on disk is still complete, valid JSON (not truncated).
        assert json.loads((cache_dir / "entry.json").read_text()) == {"ok": True}


class TestAtomicState:
    def test_save_then_load(self, cache_dir):
        state = {"w": np.arange(6.0).reshape(2, 3), "b": np.zeros(3)}
        cache.save_state("model", state)
        loaded = cache.load_state("model")
        assert set(loaded) == {"w", "b"}
        assert np.array_equal(loaded["w"], state["w"])
        assert no_tmp_files(cache_dir)

    def test_failed_write_keeps_old_entry(self, cache_dir, monkeypatch):
        old = {"w": np.ones(4)}
        cache.save_state("model", old)

        def boom(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(cache.np, "savez", boom)
        with pytest.raises(OSError, match="disk full"):
            cache.save_state("model", {"w": np.zeros(4)})
        loaded = cache.load_state("model")
        assert np.array_equal(loaded["w"], old["w"])
        assert no_tmp_files(cache_dir)


class TestLoadMetrics:
    def test_hit_and_miss_counters(self, cache_dir, monkeypatch):
        # Disable the in-process memo so every load exercises the disk path
        # (memoized loads count cache.memo.* instead, covered elsewhere).
        monkeypatch.setenv("REPRO_CACHE_MEMO", "0")
        METRICS.reset()
        assert cache.load_json("absent") is None
        cache.save_json("present", {"x": 1})
        cache.load_json("present")
        assert cache.load_state("absent") is None
        counters = METRICS.snapshot()["counters"]
        assert counters["cache.artifact.miss{kind=json}"] == 1
        assert counters["cache.artifact.hit{kind=json}"] == 1
        assert counters["cache.artifact.miss{kind=state}"] == 1
