"""In-process read-through memo and single-flight wrappers over the disk cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import cache
from repro.obs import METRICS


@pytest.fixture(autouse=True)
def fresh_memo(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    cache.clear_memo()
    METRICS.reset()
    yield
    cache.clear_memo()


class TestJsonMemo:
    def test_save_primes_memo(self):
        cache.save_json("entry", {"x": 1})
        assert cache.load_json("entry") == {"x": 1}
        assert METRICS.counter("cache.memo.hit", kind="json") == 1
        # The memo hit never touched the disk counters.
        assert METRICS.counter("cache.artifact.hit", kind="json") == 0

    def test_memo_hit_matches_disk_round_trip(self):
        # numpy scalars are serialized via default=float; a memo hit must
        # return the same coerced values a fresh disk read would.
        cache.save_json("entry", {"x": np.float64(1.5), "n": 3})
        memo_value = cache.load_json("entry")
        cache.clear_memo()
        disk_value = cache.load_json("entry")
        assert memo_value == disk_value
        assert type(memo_value["x"]) is float

    def test_memo_values_are_isolated_copies(self):
        cache.save_json("entry", {"inner": {"x": 1}})
        first = cache.load_json("entry")
        first["inner"]["x"] = 999
        assert cache.load_json("entry") == {"inner": {"x": 1}}

    def test_eviction_falls_back_to_disk(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MEMO", "1")
        cache.save_json("a", {"k": "a"})
        cache.save_json("b", {"k": "b"})  # capacity 1: evicts "a"
        assert cache.load_json("a") == {"k": "a"}
        assert METRICS.counter("cache.artifact.hit", kind="json") == 1

    def test_memo_scoped_by_cache_dir(self, tmp_path, monkeypatch):
        cache.save_json("entry", {"x": 1})
        other = tmp_path / "other"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(other))
        # Same key, different directory: must miss, not serve the stale memo.
        assert cache.load_json("entry") is None


class TestStateMemo:
    def test_memo_hit_returns_equal_arrays(self):
        state = {"w": np.arange(6.0).reshape(2, 3)}
        cache.save_state("model", state)
        loaded = cache.load_state("model")
        assert METRICS.counter("cache.memo.hit", kind="state") == 1
        assert np.array_equal(loaded["w"], state["w"])

    def test_memoized_arrays_are_read_only(self):
        cache.save_state("model", {"w": np.ones(4)})
        loaded = cache.load_state("model")
        with pytest.raises(ValueError):
            loaded["w"][0] = 2.0

    def test_disabled_memo_always_reads_disk(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MEMO", "0")
        cache.save_state("model", {"w": np.ones(4)})
        cache.load_state("model")
        cache.load_state("model")
        assert METRICS.counter("cache.artifact.hit", kind="state") == 2
        assert METRICS.counter("cache.memo.hit", kind="state") == 0


class TestEnsure:
    def test_ensure_state_computes_once(self):
        calls = []

        def compute():
            calls.append(1)
            return {"w": np.full(3, 7.0)}

        first = cache.ensure_state("model", compute)
        second = cache.ensure_state("model", compute)
        assert len(calls) == 1
        assert np.array_equal(first["w"], second["w"])
        # The artifact landed on disk, not just in the memo.
        cache.clear_memo()
        assert cache.load_state("model") is not None

    def test_ensure_json_round_trips(self):
        value = cache.ensure_json("entry", lambda: {"x": np.float64(2.5)})
        assert value == {"x": 2.5}
        assert type(value["x"]) is float
        assert cache.ensure_json("entry", lambda: {"x": 0.0}) == {"x": 2.5}


class TestSummary:
    def test_summary_mentions_all_families(self):
        cache.save_json("entry", {"x": 1})
        cache.load_json("entry")
        line = cache.cache_summary()
        assert line.startswith("[cache]")
        for token in ("state", "json", "memo", "acquired", "contended", "stale_takeover"):
            assert token in line
