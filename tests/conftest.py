"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.accel import ChipConfig
from repro.datasets import SyntheticImageDataset


@pytest.fixture(autouse=True, scope="session")
def _isolated_repro_cache(tmp_path_factory):
    """Point the artifact cache at a per-session temp dir.

    Keeps tests from reading stale drain-time memo entries produced by an
    older checkout (which could mask simulator regressions) and from
    littering the working directory.  Tests that need their own cache dir
    still override this via ``monkeypatch.setenv``.
    """
    prev = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro_cache"))
    yield
    if prev is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = prev


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tiny_flat_dataset() -> SyntheticImageDataset:
    """A small, easy flat dataset for training-behaviour tests."""
    return SyntheticImageDataset.generate(
        "tiny-flat", (1, 12, 12), num_classes=4, train_size=160, test_size=80,
        noise=0.8, max_shift=1, seed=7, flat=True,
    )


@pytest.fixture(scope="session")
def tiny_image_dataset() -> SyntheticImageDataset:
    """A small NCHW dataset for conv training tests."""
    return SyntheticImageDataset.generate(
        "tiny-image", (1, 12, 12), num_classes=4, train_size=160, test_size=80,
        noise=0.8, max_shift=1, seed=8,
    )


@pytest.fixture(scope="session")
def chip16() -> ChipConfig:
    return ChipConfig.table2(16)


def numeric_gradient(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar f w.r.t. array x."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        fp = f()
        flat[i] = orig - eps
        fm = f()
        flat[i] = orig
        gflat[i] = (fp - fm) / (2 * eps)
    return grad
