"""Tests for the Sequential container."""

import numpy as np
import pytest

from repro.nn import (
    Conv2D,
    Dense,
    Flatten,
    MaxPool2D,
    ReLU,
    Sequential,
    SoftmaxCrossEntropy,
)


def small_net(rng=None):
    rng = rng or np.random.default_rng(0)
    return Sequential(
        [
            Conv2D(1, 4, 3, padding=1, name="conv1", rng=rng),
            ReLU(name="relu1"),
            MaxPool2D(2, 2, name="pool1"),
            Flatten(name="flatten"),
            Dense(4 * 3 * 3, 5, name="ip1", rng=rng),
        ],
        input_shape=(1, 6, 6),
        name="small",
    )


class TestSequential:
    def test_forward_shape(self, rng):
        net = small_net()
        assert net.forward(rng.normal(size=(7, 1, 6, 6))).shape == (7, 5)

    def test_layer_shapes(self):
        shapes = small_net().layer_shapes()
        assert shapes[0] == ((1, 6, 6), (4, 6, 6))
        assert shapes[-1] == ((36,), (5,))

    def test_output_shape(self):
        assert small_net().output_shape() == (5,)

    def test_total_macs(self):
        net = small_net()
        # conv: 4*6*6*1*9; dense: 36*5
        assert net.total_macs() == 4 * 36 * 9 + 180

    def test_geometry_requires_input_shape(self, rng):
        net = Sequential([Dense(4, 2, rng=rng)])
        with pytest.raises(ValueError):
            net.layer_shapes()

    def test_duplicate_layer_names_uniquified(self, rng):
        net = Sequential([ReLU(name="act"), ReLU(name="act")])
        assert net.layers[0].name != net.layers[1].name

    def test_parameter_names_qualified(self):
        names = [name for name, _ in small_net().named_parameters()]
        assert "conv1.weight" in names
        assert "ip1.bias" in names

    def test_get_parameter_missing(self):
        with pytest.raises(KeyError):
            small_net().get_parameter("nope.weight")

    def test_state_dict_roundtrip(self, rng):
        a = small_net(np.random.default_rng(1))
        b = small_net(np.random.default_rng(2))
        x = rng.normal(size=(3, 1, 6, 6))
        assert not np.allclose(a.forward(x), b.forward(x))
        b.load_state_dict(a.state_dict())
        np.testing.assert_array_equal(a.forward(x), b.forward(x))

    def test_state_dict_is_a_copy(self):
        net = small_net()
        state = net.state_dict()
        state["ip1.bias"][...] = 99.0
        assert not np.any(net.get_parameter("ip1.bias").data == 99.0)

    def test_load_state_dict_missing_key(self):
        net = small_net()
        state = net.state_dict()
        del state["ip1.bias"]
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_load_state_dict_shape_mismatch(self):
        net = small_net()
        state = net.state_dict()
        state["ip1.bias"] = np.zeros(99)
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_backward_propagates(self, rng):
        net = small_net()
        x = rng.normal(size=(4, 1, 6, 6))
        loss = SoftmaxCrossEntropy()
        loss(net.forward(x), np.array([0, 1, 2, 3]))
        net.zero_grad()
        grad_in = net.backward(loss.backward())
        assert grad_in.shape == x.shape
        # Every parameter received some gradient.
        for _, p in net.named_parameters():
            assert np.any(p.grad != 0)

    def test_train_eval_propagate(self):
        net = small_net()
        net.eval()
        assert all(not l.training for l in net.layers)
        net.train()
        assert all(l.training for l in net.layers)

    def test_predict_and_accuracy(self, rng):
        net = small_net()
        x = rng.normal(size=(10, 1, 6, 6))
        preds = net.predict(x, batch_size=3)
        assert preds.shape == (10,)
        acc = net.accuracy(x, preds)
        assert acc == 1.0

    def test_predict_empty(self):
        net = small_net()
        assert net.predict(np.zeros((0, 1, 6, 6))).shape == (0,)

    def test_summary_contains_layers(self):
        text = small_net().summary()
        assert "conv1" in text and "total parameters" in text

    def test_num_parameters(self):
        net = small_net()
        expected = (4 * 1 * 9 + 4) + (36 * 5 + 5)
        assert net.num_parameters == expected
