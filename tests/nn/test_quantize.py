"""Tests for 16-bit fixed-point quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    Dense,
    FixedPointFormat,
    Sequential,
    dequantize,
    quantize,
    quantize_model,
)


class TestFixedPointFormat:
    def test_defaults_match_table2(self):
        fmt = FixedPointFormat()
        assert fmt.total_bits == 16
        assert fmt.bytes_per_value == 2

    def test_scale(self):
        assert FixedPointFormat(16, 8).scale == 1 / 256

    def test_range(self):
        fmt = FixedPointFormat(8, 4)
        assert fmt.max_value == 127 / 16
        assert fmt.min_value == -8.0

    def test_for_range_covers(self):
        fmt = FixedPointFormat.for_range(5.0)
        assert fmt.max_value >= 5.0

    def test_for_range_tiny(self):
        fmt = FixedPointFormat.for_range(0.0)
        assert fmt.frac_bits == fmt.total_bits - 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            FixedPointFormat(1, 0)
        with pytest.raises(ValueError):
            FixedPointFormat(16, 16)


class TestQuantize:
    def test_roundtrip_on_grid(self):
        fmt = FixedPointFormat(16, 8)
        x = np.array([0.0, 1.0, -1.5, 0.25])
        np.testing.assert_array_equal(dequantize(quantize(x, fmt), fmt), x)

    def test_rounding(self):
        fmt = FixedPointFormat(16, 1)  # grid of 0.5
        out = dequantize(quantize(np.array([0.3, 0.74]), fmt), fmt)
        np.testing.assert_array_equal(out, [0.5, 0.5])

    def test_saturation(self):
        fmt = FixedPointFormat(8, 0)
        q = quantize(np.array([1000.0, -1000.0]), fmt)
        np.testing.assert_array_equal(q, [127, -128])

    @given(st.floats(-100, 100))
    @settings(max_examples=50, deadline=None)
    def test_error_bounded_by_half_lsb(self, value):
        fmt = FixedPointFormat.for_range(128.0)
        approx = dequantize(quantize(np.array([value]), fmt), fmt)[0]
        assert abs(approx - value) <= fmt.scale / 2 + 1e-12

    def test_quantize_model_preserves_function_approximately(self, rng):
        model = Sequential([Dense(6, 4, rng=rng)], input_shape=(6,))
        x = rng.normal(size=(3, 6))
        before = model.forward(x)
        formats = quantize_model(model)
        after = model.forward(x)
        assert "dense.weight" in formats
        np.testing.assert_allclose(before, after, atol=0.05)

    def test_quantize_model_weights_on_grid(self, rng):
        model = Sequential([Dense(6, 4, rng=rng)], input_shape=(6,))
        formats = quantize_model(model)
        for name, param in model.named_parameters():
            fmt = formats[name]
            grid = param.data / fmt.scale
            np.testing.assert_allclose(grid, np.round(grid), atol=1e-9)


class TestQuantizeIdempotence:
    def test_double_quantization_is_identity(self, rng):
        fmt = FixedPointFormat(16, 8)
        x = rng.normal(size=200)
        once = dequantize(quantize(x, fmt), fmt)
        twice = dequantize(quantize(once, fmt), fmt)
        np.testing.assert_array_equal(once, twice)

    def test_quantize_model_idempotent(self, rng):
        model = Sequential([Dense(6, 4, rng=rng)], input_shape=(6,))
        quantize_model(model, FixedPointFormat(16, 8))
        state_once = model.state_dict()
        quantize_model(model, FixedPointFormat(16, 8))
        for name, value in model.state_dict().items():
            np.testing.assert_array_equal(value, state_once[name])
