"""Tests for the numerical primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.functional import (
    col2im,
    col2im_t,
    conv_output_size,
    im2col,
    im2col_t,
    log_softmax,
    one_hot,
    pad_nchw,
    relu,
    sigmoid,
    softmax,
)


class TestConvOutputSize:
    def test_basic(self):
        assert conv_output_size(28, 5, 1, 0) == 24

    def test_stride(self):
        assert conv_output_size(28, 2, 2, 0) == 14

    def test_padding(self):
        assert conv_output_size(32, 5, 1, 2) == 32

    def test_caffe_pool_geometry(self):
        # cifar10_quick pool: 3x3 stride 2 on 32 -> 15... Caffe uses ceil; we
        # use floor, documented: 32 -> 15 here.
        assert conv_output_size(32, 3, 2, 0) == 15

    def test_window_too_large(self):
        with pytest.raises(ValueError):
            conv_output_size(4, 5, 1, 0)

    def test_bad_kernel(self):
        with pytest.raises(ValueError):
            conv_output_size(8, 0, 1, 0)

    def test_bad_stride(self):
        with pytest.raises(ValueError):
            conv_output_size(8, 3, 0, 0)

    def test_negative_pad(self):
        with pytest.raises(ValueError):
            conv_output_size(8, 3, 1, -1)


class TestIm2col:
    def test_identity_kernel(self):
        """1x1 kernel: columns are just the pixels."""
        x = np.arange(2 * 3 * 4 * 4, dtype=np.float64).reshape(2, 3, 4, 4)
        cols = im2col(x, 1, 1)
        assert cols.shape == (2 * 16, 3)
        # First row = channel values of pixel (0,0) of sample 0.
        np.testing.assert_array_equal(cols[0], x[0, :, 0, 0])

    def test_known_values(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        cols = im2col(x, 2, 2, stride=2)
        assert cols.shape == (4, 4)
        np.testing.assert_array_equal(cols[0], [0, 1, 4, 5])
        np.testing.assert_array_equal(cols[3], [10, 11, 14, 15])

    def test_conv_equivalence(self, rng):
        """im2col matmul equals direct convolution."""
        x = rng.normal(size=(2, 3, 6, 6))
        w = rng.normal(size=(4, 3, 3, 3))
        cols = im2col(x, 3, 3, stride=1, pad=1)
        out = (cols @ w.reshape(4, -1).T).reshape(2, 6, 6, 4).transpose(0, 3, 1, 2)
        # Direct convolution at one output position.
        xp = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        manual = np.sum(xp[1, :, 2:5, 3:6] * w[2])
        assert np.isclose(out[1, 2, 2, 3], manual)

    @given(
        kernel=st.integers(1, 3),
        stride=st.integers(1, 2),
        pad=st.integers(0, 2),
    )
    @settings(max_examples=20, deadline=None)
    def test_col2im_is_adjoint(self, kernel, stride, pad):
        """<im2col(x), y> == <x, col2im(y)> — exact adjoint pair."""
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 2, 5, 5))
        cols = im2col(x, kernel, kernel, stride, pad)
        y = rng.normal(size=cols.shape)
        lhs = float(np.sum(cols * y))
        back = col2im(y, x.shape, kernel, kernel, stride, pad)
        rhs = float(np.sum(x * back))
        assert np.isclose(lhs, rhs)


class TestIm2colT:
    """Channel-major columns: the transpose of im2col's layout, bit for bit."""

    @given(
        kernel=st.integers(1, 3),
        stride=st.integers(1, 2),
        pad=st.integers(0, 2),
    )
    @settings(max_examples=20, deadline=None)
    def test_matches_im2col_transposed(self, kernel, stride, pad):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2, 3, 5, 5))
        n = x.shape[0]
        cols = im2col(x, kernel, kernel, stride, pad)
        cols_t = im2col_t(x, kernel, kernel, stride, pad)
        # Row (n, y, x, c, ky, kx) of im2col is column (c, ky, kx), (n, y, x)
        # of im2col_t, with both axes in the same lexicographic order.
        np.testing.assert_array_equal(cols_t, cols.T)
        assert cols_t.shape == (cols.shape[1], cols.shape[0])
        assert cols_t.flags.c_contiguous

    def test_out_buffer_path_identical(self, rng):
        x = rng.normal(size=(2, 3, 6, 6))
        fresh = im2col_t(x, 3, 3, 1, 1)
        out = np.empty_like(fresh)
        pad_buf = np.zeros((2, 3, 8, 8))
        reused = im2col_t(x, 3, 3, 1, 1, out=out, pad_buffer=pad_buf)
        assert reused is out
        np.testing.assert_array_equal(reused, fresh)
        # A reused pad buffer keeps its zero border: second call, same bytes.
        again = im2col_t(x, 3, 3, 1, 1, out=out, pad_buffer=pad_buf)
        np.testing.assert_array_equal(again, fresh)

    @given(
        kernel=st.integers(1, 3),
        stride=st.integers(1, 2),
        pad=st.integers(0, 2),
    )
    @settings(max_examples=20, deadline=None)
    def test_col2im_t_is_adjoint(self, kernel, stride, pad):
        """<im2col_t(x), y> == <x, col2im_t(y)> — exact adjoint pair."""
        rng = np.random.default_rng(2)
        x = rng.normal(size=(2, 2, 5, 5))
        cols = im2col_t(x, kernel, kernel, stride, pad)
        y = rng.normal(size=cols.shape)
        lhs = float(np.sum(cols * y))
        back = col2im_t(y, x.shape, kernel, kernel, stride, pad)
        rhs = float(np.sum(x * back))
        assert np.isclose(lhs, rhs)


class TestPad:
    def test_zero_pad_is_identity(self, rng):
        x = rng.normal(size=(1, 2, 3, 3))
        assert pad_nchw(x, 0) is x

    def test_pad_shape_and_values(self, rng):
        x = rng.normal(size=(1, 2, 3, 3))
        p = pad_nchw(x, 2)
        assert p.shape == (1, 2, 7, 7)
        assert p[0, 0, 0, 0] == 0.0
        np.testing.assert_array_equal(p[:, :, 2:5, 2:5], x)


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        s = softmax(rng.normal(size=(5, 7)), axis=1)
        np.testing.assert_allclose(s.sum(axis=1), 1.0)

    def test_shift_invariance(self, rng):
        x = rng.normal(size=(3, 4))
        np.testing.assert_allclose(softmax(x), softmax(x + 100.0))

    def test_large_values_stable(self):
        s = softmax(np.array([[1000.0, 1001.0]]))
        assert np.all(np.isfinite(s))

    def test_log_softmax_consistent(self, rng):
        x = rng.normal(size=(4, 6))
        np.testing.assert_allclose(log_softmax(x), np.log(softmax(x)), atol=1e-12)


class TestOneHot:
    def test_basic(self):
        out = one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_array_equal(out, np.eye(3)[[0, 2, 1]])

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            one_hot(np.array([3]), 3)

    def test_negative(self):
        with pytest.raises(ValueError):
            one_hot(np.array([-1]), 3)

    def test_wrong_ndim(self):
        with pytest.raises(ValueError):
            one_hot(np.zeros((2, 2), dtype=int), 3)

    def test_empty(self):
        assert one_hot(np.array([], dtype=int), 3).shape == (0, 3)


class TestActivationFunctions:
    def test_relu(self):
        np.testing.assert_array_equal(
            relu(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0]
        )

    def test_sigmoid_range_and_symmetry(self, rng):
        x = rng.normal(size=100) * 10
        s = sigmoid(x)
        assert np.all((s > 0) & (s < 1))
        np.testing.assert_allclose(sigmoid(-x), 1 - s, atol=1e-12)

    def test_sigmoid_extreme_stable(self):
        assert np.isfinite(sigmoid(np.array([-1000.0, 1000.0]))).all()
