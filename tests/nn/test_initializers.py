"""Tests for weight initializers."""

import numpy as np
import pytest

from repro.nn.initializers import (
    constant,
    get_initializer,
    he_normal,
    he_uniform,
    normal,
    uniform,
    xavier_normal,
    xavier_uniform,
    zeros,
)


@pytest.fixture
def gen():
    return np.random.default_rng(0)


class TestBasicInitializers:
    def test_zeros(self, gen):
        np.testing.assert_array_equal(zeros((3, 4), gen), 0.0)

    def test_constant(self, gen):
        np.testing.assert_array_equal(constant(2.5)((2, 2), gen), 2.5)

    def test_uniform_range(self, gen):
        w = uniform(0.1)((1000,), gen)
        assert np.all(np.abs(w) <= 0.1)

    def test_normal_std(self, gen):
        w = normal(0.2)((20000,), gen)
        assert abs(w.std() - 0.2) < 0.01


class TestVarianceScaling:
    def test_he_normal_std(self, gen):
        fan_in = 400
        w = he_normal((fan_in, 200), gen)
        assert abs(w.std() - np.sqrt(2.0 / fan_in)) < 0.005

    def test_xavier_normal_std(self, gen):
        w = xavier_normal((300, 100), gen)
        assert abs(w.std() - np.sqrt(2.0 / 400)) < 0.01

    def test_he_uniform_bound(self, gen):
        fan_in = 100
        w = he_uniform((fan_in, 50), gen)
        assert np.all(np.abs(w) <= np.sqrt(6.0 / fan_in) + 1e-12)

    def test_xavier_uniform_bound(self, gen):
        w = xavier_uniform((100, 60), gen)
        assert np.all(np.abs(w) <= np.sqrt(6.0 / 160) + 1e-12)

    def test_conv_fan_computation(self, gen):
        """Conv fan-in = in_channels * receptive field."""
        w = he_normal((8, 4, 3, 3), gen)  # fan_in = 4*9 = 36
        assert abs(w.std() - np.sqrt(2.0 / 36)) < 0.02

    def test_xavier_smaller_than_he(self, gen):
        he = he_normal((200, 200), np.random.default_rng(1)).std()
        xavier = xavier_normal((200, 200), np.random.default_rng(1)).std()
        assert xavier < he


class TestRegistry:
    def test_lookup_by_name(self, gen):
        init = get_initializer("he_normal")
        assert init is he_normal

    def test_callable_passthrough(self):
        init = constant(1.0)
        assert get_initializer(init) is init

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            get_initializer("glorot")

    def test_deterministic_given_rng(self):
        a = he_normal((5, 5), np.random.default_rng(42))
        b = he_normal((5, 5), np.random.default_rng(42))
        np.testing.assert_array_equal(a, b)
