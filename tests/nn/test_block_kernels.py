"""Bit-exactness of the fused block kernels against the sliced-loop reference.

``CoreBlockPartition`` and ``GroupLassoRegularizer`` each have two
implementations of every block operation: the fused path (one blocked-view
reduction / broadcast per tensor, uniform partitions only) and the original
P x P sliced loop.  The property suite below drives both paths with
randomized kinds, core counts, dtypes, partition layouts (uniform and
uneven), strength masks, and weight tensors seeded with exact-zero and
near-threshold blocks — and asserts **byte-identical** results, mirroring
``tests/noc/test_engine_equivalence.py``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.layers.base import Parameter
from repro.nn.regularizers import GroupLassoRegularizer
from repro.nn.sparsity import CoreBlockPartition, split_boundaries
from repro.obs import METRICS


class _FakeModel:
    """Just enough model surface for GroupLassoRegularizer."""

    def __init__(self, params: dict[str, Parameter]) -> None:
        self._params = params

    def get_parameter(self, name: str) -> Parameter:
        return self._params[name]


def _random_boundaries(draw, total: int, parts: int) -> list[tuple[int, int]]:
    """Random contiguous split of [0, total) into ``parts`` (some may be empty)."""
    cuts = sorted(
        draw(st.lists(st.integers(0, total), min_size=parts - 1, max_size=parts - 1))
    )
    edges = [0, *cuts, total]
    return [(edges[i], edges[i + 1]) for i in range(parts)]


@st.composite
def block_case(draw):
    kind = draw(st.sampled_from(["dense", "conv"]))
    p = draw(st.integers(1, 5))
    uniform = draw(st.booleans())
    dtype = draw(st.sampled_from([np.float64, np.float32]))

    if uniform:
        prod_total = p * draw(st.integers(1, 4))
        cons_total = p * draw(st.integers(1, 4))
        producer_bounds = consumer_bounds = None
    else:
        prod_total = draw(st.integers(0, 10))
        cons_total = draw(st.integers(0, 10))
        producer_bounds = _random_boundaries(draw, prod_total, p)
        consumer_bounds = _random_boundaries(draw, cons_total, p)

    if kind == "dense":
        shape = (prod_total, cons_total)
    else:
        kh = draw(st.integers(1, 3))
        kw = draw(st.integers(1, 3))
        shape = (cons_total, prod_total, kh, kw)

    # Weights from a seeded rng; some blocks forced to exact zero and some
    # scaled tiny so prune/prox thresholds and the s==0 skips all trigger.
    rng = np.random.default_rng(draw(st.integers(0, 2**32 - 1)))
    weights = (rng.standard_normal(shape) * 0.1).astype(dtype)
    partition = CoreBlockPartition(
        shape, kind, p,
        producer_bounds=producer_bounds, consumer_bounds=consumer_bounds,
    )
    for i in range(p):
        for j in range(p):
            roll = rng.random()
            block = weights[partition.block_slices(i, j)]
            if roll < 0.2:
                block[...] = 0.0
            elif roll < 0.4:
                block *= 1e-4

    # Strength: None (SS) or a masked matrix with exact zeros (SS_Mask-like).
    if draw(st.booleans()):
        strength = None
    else:
        strength = rng.random((p, p))
        strength[rng.random((p, p)) < 0.3] = 0.0

    lam = draw(st.sampled_from([0.0, 1e-3, 0.1, 2.0]))
    lr = draw(st.sampled_from([1e-3, 0.05, 0.5]))
    threshold = draw(st.sampled_from([0.0, 1e-4, 5e-2]))
    return {
        "kind": kind, "p": p, "shape": shape, "uniform": partition.uniform,
        "producer_bounds": producer_bounds, "consumer_bounds": consumer_bounds,
        "weights": weights, "strength": strength,
        "lam": lam, "lr": lr, "threshold": threshold,
    }


def _partition(case, fused: bool | None) -> CoreBlockPartition:
    return CoreBlockPartition(
        case["shape"], case["kind"], case["p"],
        producer_bounds=case["producer_bounds"],
        consumer_bounds=case["consumer_bounds"],
        fused=fused,
    )


def _reg_outputs(case, fused: bool | None):
    """(grad bytes, post-prox weight bytes, loss) under one kernel path."""
    partition = _partition(case, fused)
    param = Parameter(case["weights"].copy(), name="w", dtype=case["weights"].dtype)
    model = _FakeModel({"w": param})
    reg = GroupLassoRegularizer(
        {"w": partition}, lam=case["lam"], strength=case["strength"]
    )
    loss = reg.loss(model)
    reg.add_gradients(model)
    grad = param.grad.tobytes()
    reg.prox_step(model, lr=case["lr"])
    return grad, param.data.tobytes(), loss, param.data.copy()


class TestFusedLoopEquivalence:
    """Property: fused and loop paths agree byte-for-byte on any input."""

    @settings(max_examples=60, deadline=None)
    @given(case=block_case())
    def test_partition_ops_identical(self, case):
        # fused=None auto-selects; against fused=False both must agree even
        # when auto lands on the loop (uneven partitions).
        auto = _partition(case, None)
        loop = _partition(case, False)
        w = case["weights"]

        norms_a, norms_l = auto.block_norms(w.copy()), loop.block_norms(w.copy())
        assert norms_a.dtype == norms_l.dtype == np.float64
        assert norms_a.tobytes() == norms_l.tobytes()

        assert np.array_equal(auto.zero_mask(w.copy()), loop.zero_mask(w.copy()))

        for protect in (True, False):
            wa, wl = w.copy(), w.copy()
            pa = auto.prune_blocks(wa, case["threshold"], protect_diagonal=protect)
            pl = loop.prune_blocks(wl, case["threshold"], protect_diagonal=protect)
            assert np.array_equal(pa, pl)
            assert wa.tobytes() == wl.tobytes()

        rng = np.random.default_rng(0)
        keep = rng.random((case["p"], case["p"])) > 0.5
        wa, wl = w.copy(), w.copy()
        auto.apply_block_mask(wa, keep)
        loop.apply_block_mask(wl, keep)
        assert wa.tobytes() == wl.tobytes()

    @settings(max_examples=60, deadline=None)
    @given(case=block_case())
    def test_regularizer_identical(self, case):
        grad_a, prox_a, loss_a, data_a = _reg_outputs(case, None)
        grad_l, prox_l, loss_l, data_l = _reg_outputs(case, False)
        assert grad_a == grad_l
        assert prox_a == prox_l
        assert loss_a == loss_l
        # Proximal zeros must be exact +0.0 on both paths (the traffic model
        # keys on exact zeros; -0.0 would still compare equal but the paths
        # must agree bitwise, which signbit differences would break).
        assert not np.any(np.signbit(data_a[data_a == 0.0]))
        assert not np.any(np.signbit(data_l[data_l == 0.0]))

    @settings(max_examples=60, deadline=None)
    @given(case=block_case())
    def test_forced_fused_matches_loop_when_uniform(self, case):
        # Auto dispatch stays on the loop below _FUSED_MIN_BLOCKS, so this
        # forced-fused case is what property-tests the fused kernels at the
        # small core counts the strategy draws.
        if not case["uniform"]:
            with pytest.raises(ValueError, match="uniform"):
                _partition(case, True)
            return
        fused = _partition(case, True)
        loop = _partition(case, False)
        w = case["weights"]
        assert fused.block_norms(w.copy()).tobytes() == \
            loop.block_norms(w.copy()).tobytes()
        assert np.array_equal(fused.zero_mask(w.copy()), loop.zero_mask(w.copy()))
        wa, wl = w.copy(), w.copy()
        pa = fused.prune_blocks(wa, case["threshold"], protect_diagonal=True)
        pl = loop.prune_blocks(wl, case["threshold"], protect_diagonal=True)
        assert np.array_equal(pa, pl)
        assert wa.tobytes() == wl.tobytes()
        grad_f, prox_f, loss_f, _ = _reg_outputs(case, True)
        grad_l, prox_l, loss_l, _ = _reg_outputs(case, False)
        assert grad_f == grad_l
        assert prox_f == prox_l
        assert loss_f == loss_l


class TestDeterministicCorpus:
    """Hand-picked cases the property strategy might visit rarely."""

    def test_standard_16_core_partitions_take_fused_path(self):
        """The shapes layer_block_partitions produces at 16 cores must not
        silently fall back to the loop — CI greps the benchmark for this too."""
        for kind, shape in (("dense", (784, 304)), ("conv", (32, 16, 3, 3))):
            partition = CoreBlockPartition(shape, kind, 16)
            assert partition.uniform
            METRICS.reset()
            partition.block_norms(np.zeros(shape))
            assert METRICS.counter("sparsity.block_kernel", path="fused") == 1
            assert METRICS.counter("sparsity.block_kernel", path="loop") == 0

    def test_auto_dispatch_uses_loop_below_crossover(self):
        """Below _FUSED_MIN_BLOCKS the loop is faster; auto must pick it."""
        partition = CoreBlockPartition((16, 16), "dense", 4)
        METRICS.reset()
        partition.block_norms(np.ones((16, 16)))
        assert METRICS.counter("sparsity.block_kernel", path="loop") == 1
        assert METRICS.counter("sparsity.block_kernel", path="fused") == 0
        # Forcing fused=True overrides the heuristic.
        forced = CoreBlockPartition((16, 16), "dense", 4, fused=True)
        METRICS.reset()
        forced.block_norms(np.ones((16, 16)))
        assert METRICS.counter("sparsity.block_kernel", path="fused") == 1

    def test_env_gate_disables_fused(self, monkeypatch):
        monkeypatch.setenv("REPRO_FUSED_BLOCKS", "0")
        partition = CoreBlockPartition((8, 8), "dense", 4)
        METRICS.reset()
        partition.block_norms(np.ones((8, 8)))
        assert METRICS.counter("sparsity.block_kernel", path="loop") == 1

    def test_non_contiguous_input_falls_back(self):
        partition = CoreBlockPartition((8, 8), "dense", 4)
        w = np.asfortranarray(np.random.default_rng(0).standard_normal((8, 8)))
        assert not partition.fused_ok(w)
        ref = CoreBlockPartition((8, 8), "dense", 4, fused=False)
        assert partition.block_norms(w).tobytes() == ref.block_norms(w).tobytes()

    def test_empty_producer_blocks(self):
        """P > channels: trailing blocks are empty; norms stay 0, prune skips."""
        bounds = split_boundaries(3, 5)
        partition = CoreBlockPartition(
            (3, 10), "dense", 5, producer_bounds=bounds
        )
        loop = CoreBlockPartition((3, 10), "dense", 5, producer_bounds=bounds, fused=False)
        w = np.ones((3, 10))
        assert partition.block_norms(w).tobytes() == loop.block_norms(w).tobytes()
        wa, wl = w.copy(), w.copy()
        pa = partition.prune_blocks(wa, threshold=10.0, protect_diagonal=False)
        pl = loop.prune_blocks(wl, threshold=10.0, protect_diagonal=False)
        assert np.array_equal(pa, pl)
        # Empty blocks are never reported as pruned.
        assert not pa[3:].any()

    def test_block_sizes_cached_and_readonly(self):
        partition = CoreBlockPartition((8, 8), "dense", 4)
        sizes = partition.block_sizes()
        assert sizes is partition.block_sizes()
        with pytest.raises(ValueError):
            sizes[0, 0] = 99

    def test_strength_cache_reused(self):
        partition = CoreBlockPartition((8, 8), "dense", 4)
        reg = GroupLassoRegularizer({"w": partition}, lam=0.1)
        s1 = reg._block_strength(partition)
        assert s1 is reg._block_strength(partition)
        assert not s1.flags.writeable
