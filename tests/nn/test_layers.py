"""Gradient and behaviour tests for every layer type."""

import numpy as np
import pytest

from repro.nn import (
    AvgPool2D,
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    LocalResponseNorm,
    MaxPool2D,
    Parameter,
    ReLU,
    Sigmoid,
    Tanh,
)

from ..conftest import numeric_gradient


def check_input_gradient(layer, x, atol=1e-5):
    """Backward's input gradient must match the numeric gradient."""
    rng = np.random.default_rng(99)
    out = layer.forward(x)
    g = rng.normal(size=out.shape)
    layer.zero_grad()
    grad_in = layer.backward(g)

    def loss():
        return float(np.sum(layer.forward(x) * g))

    num = numeric_gradient(loss, x)
    np.testing.assert_allclose(grad_in, num, atol=atol)


def check_param_gradient(layer, x, param: Parameter, atol=1e-5):
    rng = np.random.default_rng(98)
    out = layer.forward(x)
    g = rng.normal(size=out.shape)
    layer.zero_grad()
    layer.backward(g)

    def loss():
        return float(np.sum(layer.forward(x) * g))

    num = numeric_gradient(loss, param.data)
    np.testing.assert_allclose(param.grad, num, atol=atol)


class TestConv2D:
    def test_output_shape(self, rng):
        conv = Conv2D(3, 8, 5, padding=2, rng=rng)
        assert conv.forward(rng.normal(size=(2, 3, 10, 10))).shape == (2, 8, 10, 10)
        assert conv.output_shape((3, 10, 10)) == (8, 10, 10)

    def test_stride(self, rng):
        conv = Conv2D(1, 2, 3, stride=2, rng=rng)
        assert conv.forward(rng.normal(size=(1, 1, 9, 9))).shape == (1, 2, 4, 4)

    def test_input_gradient(self, rng):
        conv = Conv2D(2, 3, 3, padding=1, rng=rng)
        check_input_gradient(conv, rng.normal(size=(2, 2, 4, 4)))

    def test_weight_gradient(self, rng):
        conv = Conv2D(2, 3, 3, rng=rng)
        x = rng.normal(size=(2, 2, 4, 4))
        check_param_gradient(conv, x, conv.weight)


class TestConv2DCacheLifecycle:
    """The im2col buffers are training's largest allocations; eval-mode
    forwards must not retain them and backward must release them."""

    def test_eval_forward_caches_nothing(self, rng):
        conv = Conv2D(2, 4, 3, rng=rng)
        conv.eval()
        conv.forward(rng.normal(size=(2, 2, 6, 6)))
        assert conv._cache is None

    def test_eval_and_train_forward_agree(self, rng):
        conv = Conv2D(2, 4, 3, padding=1, rng=rng)
        x = rng.normal(size=(2, 2, 6, 6))
        out_train = conv.forward(x)
        conv.eval()
        out_eval = conv.forward(x)
        np.testing.assert_array_equal(out_train, out_eval)

    def test_backward_releases_cache(self, rng):
        conv = Conv2D(2, 4, 3, rng=rng)
        out = conv.forward(rng.normal(size=(2, 2, 6, 6)))
        conv.zero_grad()
        conv.backward(np.ones_like(out))
        assert conv._cache is None
        with pytest.raises(RuntimeError, match="training-mode forward"):
            conv.backward(np.ones_like(out))

    def test_backward_after_eval_forward_raises(self, rng):
        conv = Conv2D(2, 4, 3, rng=rng)
        conv.eval()
        out = conv.forward(rng.normal(size=(2, 2, 6, 6)))
        with pytest.raises(RuntimeError, match="training-mode forward"):
            conv.backward(np.ones_like(out))

    def test_bias_gradient(self, rng):
        conv = Conv2D(2, 3, 3, rng=rng)
        x = rng.normal(size=(2, 2, 4, 4))
        check_param_gradient(conv, x, conv.bias)

    def test_strided_input_gradient(self, rng):
        """stride > 1 exercises the col2im fallback path in backward."""
        conv = Conv2D(2, 3, 3, stride=2, rng=rng)
        check_input_gradient(conv, rng.normal(size=(2, 2, 7, 7)))

    def test_strided_weight_gradient(self, rng):
        conv = Conv2D(2, 3, 3, stride=2, rng=rng)
        x = rng.normal(size=(2, 2, 7, 7))
        check_param_gradient(conv, x, conv.weight)

    def test_transposed_conv_path_matches_col2im(self, rng):
        """The stride-1 fast path and the generic col2im path must agree."""
        from repro.nn.functional import col2im

        conv = Conv2D(3, 4, 3, padding=1, rng=rng)
        x = rng.normal(size=(2, 3, 6, 6))
        out = conv.forward(x)
        g = rng.normal(size=out.shape)
        conv.zero_grad()
        fast = conv.backward(g)
        # Generic path: grad_cols @ col2im.
        go_mat = g.transpose(0, 2, 3, 1).reshape(-1, 4)
        w = conv.weight.data.reshape(4, -1)
        grad_cols = go_mat @ w
        generic = col2im(grad_cols, x.shape, 3, 3, 1, 1)
        np.testing.assert_allclose(fast, generic, atol=1e-10)

    def test_grouped_gradient(self, rng):
        conv = Conv2D(4, 6, 3, padding=1, groups=2, rng=rng)
        x = rng.normal(size=(1, 4, 4, 4))
        check_input_gradient(conv, x)
        check_param_gradient(conv, x, conv.weight)


class TestConv2DFastPathEquivalence:
    """REPRO_BUFFER_REUSE=1 (channel-major columns, kn2row backward, scratch
    reuse) and =0 (the original row-major im2col path) must compute the same
    convolution; only summation order differs, so allclose not bit-equal."""

    CASES = [
        dict(cin=3, cout=8, k=5, stride=1, padding=2, groups=1, hw=10),
        dict(cin=4, cout=6, k=3, stride=1, padding=1, groups=2, hw=6),
        dict(cin=2, cout=3, k=3, stride=2, padding=0, groups=1, hw=7),
        dict(cin=2, cout=4, k=3, stride=1, padding=0, groups=1, hw=6),
    ]

    @pytest.mark.parametrize("case", CASES)
    def test_forward_backward_agree(self, case, rng, monkeypatch):
        x = rng.normal(size=(2, case["cin"], case["hw"], case["hw"]))
        results = {}
        for gate in ("1", "0"):
            monkeypatch.setenv("REPRO_BUFFER_REUSE", gate)
            conv = Conv2D(
                case["cin"], case["cout"], case["k"], stride=case["stride"],
                padding=case["padding"], groups=case["groups"],
                rng=np.random.default_rng(7),
            )
            out = conv.forward(x)
            g = np.random.default_rng(8).normal(size=out.shape)
            conv.zero_grad()
            grad_in = conv.backward(g)
            results[gate] = (out, grad_in, conv.weight.grad.copy(),
                            conv.bias.grad.copy())
        for fast, slow in zip(results["1"], results["0"]):
            np.testing.assert_allclose(fast, slow, atol=1e-10)

    def test_fast_path_repeated_steps_are_stable(self, rng, monkeypatch):
        """Scratch buffers must not leak state between steps: two identical
        forward/backward rounds produce identical results."""
        monkeypatch.setenv("REPRO_BUFFER_REUSE", "1")
        conv = Conv2D(3, 4, 5, padding=2, rng=np.random.default_rng(3))
        x = rng.normal(size=(2, 3, 8, 8))
        g = rng.normal(size=(2, 4, 8, 8))
        rounds = []
        for _ in range(2):
            out = conv.forward(x)
            conv.zero_grad()
            grad_in = conv.backward(g)
            rounds.append((out.copy(), grad_in.copy(), conv.weight.grad.copy()))
        for a, b in zip(rounds[0], rounds[1]):
            np.testing.assert_array_equal(a, b)

    def test_groups_block_independence(self, rng):
        """Group 0's output must not depend on group 1's input channels."""
        conv = Conv2D(4, 4, 3, padding=1, groups=2, bias=False, rng=rng)
        x = rng.normal(size=(1, 4, 5, 5))
        base = conv.forward(x)
        x2 = x.copy()
        x2[:, 2:] += 10.0  # perturb group 1's inputs
        out2 = conv.forward(x2)
        np.testing.assert_array_equal(base[:, :2], out2[:, :2])
        assert not np.allclose(base[:, 2:], out2[:, 2:])

    def test_grouped_equals_blockdiag_dense(self, rng):
        """groups=2 equals a dense conv whose cross-group weights are zero."""
        g = Conv2D(4, 4, 3, groups=2, bias=False, rng=np.random.default_rng(3))
        d = Conv2D(4, 4, 3, groups=1, bias=False, rng=np.random.default_rng(4))
        d.weight.data[...] = 0.0
        d.weight.data[:2, :2] = g.weight.data[:2]
        d.weight.data[2:, 2:] = g.weight.data[2:]
        x = rng.normal(size=(2, 4, 6, 6))
        np.testing.assert_allclose(g.forward(x), d.forward(x), atol=1e-12)

    def test_macs(self, rng):
        conv = Conv2D(16, 32, 3, padding=1, rng=rng)
        # 32 out * 8*8 spatial * 16 in * 9 window
        assert conv.macs((16, 8, 8)) == 32 * 64 * 16 * 9

    def test_macs_grouped(self, rng):
        conv = Conv2D(16, 32, 3, padding=1, groups=4, rng=rng)
        assert conv.macs((16, 8, 8)) == 32 * 64 * 4 * 9

    def test_channel_mismatch(self, rng):
        conv = Conv2D(3, 8, 3, rng=rng)
        with pytest.raises(ValueError):
            conv.forward(rng.normal(size=(1, 4, 8, 8)))

    def test_indivisible_groups(self):
        with pytest.raises(ValueError):
            Conv2D(3, 8, 3, groups=2)

    def test_backward_before_forward(self, rng):
        conv = Conv2D(2, 2, 3, rng=rng)
        with pytest.raises(RuntimeError):
            conv.backward(np.zeros((1, 2, 2, 2)))


class TestDense:
    def test_forward(self, rng):
        d = Dense(4, 3, rng=rng)
        x = rng.normal(size=(5, 4))
        np.testing.assert_allclose(
            d.forward(x), x @ d.weight.data + d.bias.data
        )

    def test_gradients(self, rng):
        d = Dense(4, 3, rng=rng)
        x = rng.normal(size=(3, 4))
        check_input_gradient(d, x)
        check_param_gradient(d, x, d.weight)
        check_param_gradient(d, x, d.bias)

    def test_no_bias(self, rng):
        d = Dense(4, 3, bias=False, rng=rng)
        assert d.bias is None
        assert d.num_parameters == 12

    def test_macs(self, rng):
        assert Dense(100, 50, rng=rng).macs((100,)) == 5000

    def test_rejects_3d_input(self, rng):
        with pytest.raises(ValueError):
            Dense(4, 3, rng=rng).forward(rng.normal(size=(2, 2, 2)))

    def test_output_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            Dense(4, 3, rng=rng).output_shape((5,))


class TestPooling:
    def test_maxpool_values(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = MaxPool2D(2, 2).forward(x)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_avgpool_values(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = AvgPool2D(2, 2).forward(x)
        np.testing.assert_array_equal(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_maxpool_gradient_routes_to_max(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        pool = MaxPool2D(2, 2)
        pool.forward(x)
        grad = pool.backward(np.ones((1, 1, 2, 2)))
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1.0
        np.testing.assert_array_equal(grad[0, 0], expected)

    def test_maxpool_input_gradient(self, rng):
        # Distinct values so argmax is stable under epsilon perturbation.
        x = rng.permutation(36).astype(np.float64).reshape(1, 1, 6, 6)
        check_input_gradient(MaxPool2D(2, 2), x, atol=1e-4)

    def test_avgpool_input_gradient(self, rng):
        check_input_gradient(AvgPool2D(3, 2), rng.normal(size=(2, 2, 7, 7)))

    def test_output_shape(self):
        assert MaxPool2D(3, 2).output_shape((16, 32, 32)) == (16, 15, 15)

    def test_default_stride_equals_kernel(self):
        assert MaxPool2D(2).stride == 2


class TestActivationsAndShape:
    def test_relu_gradient(self, rng):
        check_input_gradient(ReLU(), rng.normal(size=(3, 5)) + 0.1)

    def test_sigmoid_gradient(self, rng):
        check_input_gradient(Sigmoid(), rng.normal(size=(3, 5)))

    def test_tanh_gradient(self, rng):
        check_input_gradient(Tanh(), rng.normal(size=(3, 5)))

    def test_flatten_roundtrip(self, rng):
        f = Flatten()
        x = rng.normal(size=(2, 3, 4, 4))
        out = f.forward(x)
        assert out.shape == (2, 48)
        np.testing.assert_array_equal(f.backward(out), x)

    def test_flatten_output_shape(self):
        assert Flatten().output_shape((3, 4, 4)) == (48,)


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        d = Dropout(0.5)
        d.eval()
        x = rng.normal(size=(4, 4))
        np.testing.assert_array_equal(d.forward(x), x)

    def test_training_preserves_expectation(self):
        d = Dropout(0.5, seed=0)
        d.train()
        x = np.ones((200, 200))
        out = d.forward(x)
        assert abs(out.mean() - 1.0) < 0.05

    def test_backward_uses_same_mask(self, rng):
        d = Dropout(0.5, seed=1)
        d.train()
        x = rng.normal(size=(10, 10))
        out = d.forward(x)
        grad = d.backward(np.ones_like(x))
        # Grad is zero exactly where output is zero.
        np.testing.assert_array_equal(grad == 0, out == 0)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestLRN:
    def test_forward_reduces_magnitude(self, rng):
        lrn = LocalResponseNorm(size=5)
        x = np.abs(rng.normal(size=(2, 8, 3, 3))) + 1.0
        out = lrn.forward(x)
        assert np.all(np.abs(out) < np.abs(x))

    def test_input_gradient(self, rng):
        lrn = LocalResponseNorm(size=3, alpha=1e-2, beta=0.75, k=2.0)
        check_input_gradient(lrn, rng.normal(size=(1, 5, 2, 2)), atol=1e-4)

    def test_even_window_rejected(self):
        with pytest.raises(ValueError):
            LocalResponseNorm(size=4)


class TestBatchNorm:
    def test_normalizes_batch(self, rng):
        bn = BatchNorm(6)
        x = rng.normal(loc=3.0, scale=2.0, size=(50, 6))
        out = bn.forward(x)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-8)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_4d_input(self, rng):
        bn = BatchNorm(3)
        out = bn.forward(rng.normal(size=(4, 3, 5, 5)))
        assert out.shape == (4, 3, 5, 5)

    def test_eval_uses_running_stats(self, rng):
        bn = BatchNorm(4, momentum=0.0)  # running stats = last batch
        x = rng.normal(size=(64, 4))
        bn.forward(x)
        bn.eval()
        out = bn.forward(x)
        assert np.all(np.isfinite(out))

    def test_input_gradient(self, rng):
        bn = BatchNorm(3)
        check_input_gradient(bn, rng.normal(size=(6, 3)), atol=1e-4)

    def test_param_gradients(self, rng):
        bn = BatchNorm(3)
        x = rng.normal(size=(6, 3))
        check_param_gradient(bn, x, bn.gamma, atol=1e-4)

    def test_rejects_3d(self, rng):
        with pytest.raises(ValueError):
            BatchNorm(3).forward(rng.normal(size=(2, 3, 4)))
