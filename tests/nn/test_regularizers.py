"""Tests for L1/L2 and (masked) group-Lasso regularizers."""

import numpy as np
import pytest

from repro.nn import (
    CompositeRegularizer,
    Dense,
    GroupLassoRegularizer,
    L1Regularizer,
    L2Regularizer,
    ReLU,
    Sequential,
)
from repro.nn.sparsity import CoreBlockPartition

from ..conftest import numeric_gradient


def two_layer_model(rng=None):
    rng = rng or np.random.default_rng(0)
    return Sequential(
        [Dense(8, 8, name="ip1", rng=rng), ReLU(), Dense(8, 4, name="ip2", rng=rng)],
        input_shape=(8,),
        name="m",
    )


class TestElementwiseRegularizers:
    def test_l2_loss_value(self):
        model = two_layer_model()
        reg = L2Regularizer(0.5)
        expected = 0.5 * sum(
            np.sum(p.data ** 2)
            for name, p in model.named_parameters() if name.endswith("weight")
        )
        assert np.isclose(reg.loss(model), expected)

    def test_l2_excludes_biases(self):
        model = two_layer_model()
        model.get_parameter("ip1.bias").data[...] = 100.0
        before = L2Regularizer(1.0).loss(model)
        model.get_parameter("ip1.bias").data[...] = 0.0
        assert np.isclose(before, L2Regularizer(1.0).loss(model))

    def test_l2_gradient(self):
        model = two_layer_model()
        model.zero_grad()
        L2Regularizer(0.3).add_gradients(model)
        p = model.get_parameter("ip1.weight")
        np.testing.assert_allclose(p.grad, 0.6 * p.data)

    def test_l1_loss_and_grad(self):
        model = two_layer_model()
        reg = L1Regularizer(0.2)
        expected = 0.2 * sum(
            np.sum(np.abs(p.data))
            for name, p in model.named_parameters() if name.endswith("weight")
        )
        assert np.isclose(reg.loss(model), expected)
        model.zero_grad()
        reg.add_gradients(model)
        p = model.get_parameter("ip2.weight")
        np.testing.assert_allclose(p.grad, 0.2 * np.sign(p.data))

    def test_negative_lam_rejected(self):
        with pytest.raises(ValueError):
            L2Regularizer(-1.0)
        with pytest.raises(ValueError):
            L1Regularizer(-1.0)


def group_lasso_for(model, num_cores=4, lam=0.1, strength=None, normalize=False):
    partitions = {
        "ip1.weight": CoreBlockPartition((8, 8), "dense", num_cores),
    }
    return GroupLassoRegularizer(partitions, lam=lam, strength=strength,
                                 normalize=normalize)


class TestGroupLasso:
    def test_loss_matches_block_norms(self):
        model = two_layer_model()
        reg = group_lasso_for(model, lam=0.1)
        w = model.get_parameter("ip1.weight").data
        norms = reg.partitions["ip1.weight"].block_norms(w)
        assert np.isclose(reg.loss(model), 0.1 * norms.sum())

    def test_strength_zero_diagonal_ignores_diag(self):
        model = two_layer_model()
        s = np.ones((4, 4))
        np.fill_diagonal(s, 0.0)
        reg = group_lasso_for(model, strength=s)
        w = model.get_parameter("ip1.weight").data
        norms = reg.partitions["ip1.weight"].block_norms(w)
        off = ~np.eye(4, dtype=bool)
        assert np.isclose(reg.loss(model), 0.1 * norms[off].sum())

    def test_subgradient_matches_numeric(self):
        model = two_layer_model()
        reg = group_lasso_for(model, lam=0.05)
        model.zero_grad()
        reg.add_gradients(model)
        p = model.get_parameter("ip1.weight")

        def loss():
            return reg.loss(model)

        num = numeric_gradient(loss, p.data)
        np.testing.assert_allclose(p.grad, num, atol=1e-5)

    def test_prox_shrinks_block_norms(self):
        model = two_layer_model()
        reg = group_lasso_for(model, lam=0.5)
        w = model.get_parameter("ip1.weight")
        before = reg.partitions["ip1.weight"].block_norms(w.data)
        reg.prox_step(model, lr=0.1)
        after = reg.partitions["ip1.weight"].block_norms(w.data)
        assert np.all(after <= before + 1e-12)

    def test_prox_produces_exact_zeros(self):
        model = two_layer_model()
        w = model.get_parameter("ip1.weight")
        w.data *= 1e-4  # tiny weights: one prox step kills them
        reg = group_lasso_for(model, lam=1.0)
        reg.prox_step(model, lr=0.1)
        assert np.all(w.data == 0.0)

    def test_prox_is_proximal_operator(self):
        """Manual check of the soft-threshold formula on one block."""
        model = two_layer_model()
        w = model.get_parameter("ip1.weight")
        part = CoreBlockPartition((8, 8), "dense", 4)
        block_before = w.data[part.block_slices(0, 1)].copy()
        norm = np.sqrt(np.sum(block_before ** 2))
        lam, lr = 0.2, 0.05
        reg = GroupLassoRegularizer({"ip1.weight": part}, lam=lam, normalize=False)
        reg.prox_step(model, lr)
        expected = max(0.0, 1 - lr * lam / norm) * block_before
        np.testing.assert_allclose(
            w.data[part.block_slices(0, 1)], expected, atol=1e-12
        )

    def test_zero_masks(self):
        model = two_layer_model()
        part = CoreBlockPartition((8, 8), "dense", 4)
        reg = GroupLassoRegularizer({"ip1.weight": part}, lam=0.1)
        w = model.get_parameter("ip1.weight")
        w.data[part.block_slices(2, 3)] = 0.0
        masks = reg.zero_masks(model)
        assert masks["ip1.weight"][2, 3]
        assert not masks["ip1.weight"][0, 0]

    def test_normalize_scales_by_block_size(self):
        model = two_layer_model()
        reg_plain = group_lasso_for(model, lam=0.1, normalize=False)
        reg_norm = group_lasso_for(model, lam=0.1, normalize=True)
        # 2x2 blocks: sqrt(4) = 2x penalty.
        assert np.isclose(reg_norm.loss(model), 2 * reg_plain.loss(model))

    def test_strength_shape_check(self):
        model = two_layer_model()
        with pytest.raises(ValueError):
            group_lasso_for(model, strength=np.ones((3, 3)))

    def test_negative_strength_rejected(self):
        model = two_layer_model()
        with pytest.raises(ValueError):
            group_lasso_for(model, strength=-np.ones((4, 4)))

    def test_empty_partitions_rejected(self):
        with pytest.raises(ValueError):
            GroupLassoRegularizer({}, lam=0.1)

    def test_mismatched_core_counts_rejected(self):
        with pytest.raises(ValueError):
            GroupLassoRegularizer(
                {
                    "a": CoreBlockPartition((8, 8), "dense", 4),
                    "b": CoreBlockPartition((8, 8), "dense", 2),
                },
                lam=0.1,
            )


class TestComposite:
    def test_sums_losses(self):
        model = two_layer_model()
        l2 = L2Regularizer(0.1)
        gl = group_lasso_for(model)
        comp = CompositeRegularizer(l2, gl)
        assert np.isclose(comp.loss(model), l2.loss(model) + gl.loss(model))

    def test_sums_gradients(self):
        model = two_layer_model()
        l2 = L2Regularizer(0.1)
        gl = group_lasso_for(model)

        model.zero_grad()
        CompositeRegularizer(l2, gl).add_gradients(model)
        combined = model.get_parameter("ip1.weight").grad.copy()

        model.zero_grad()
        l2.add_gradients(model)
        gl.add_gradients(model)
        np.testing.assert_allclose(
            combined, model.get_parameter("ip1.weight").grad
        )

    def test_prox_delegates(self):
        model = two_layer_model()
        w = model.get_parameter("ip1.weight")
        w.data *= 1e-4
        comp = CompositeRegularizer(L2Regularizer(0.1), group_lasso_for(model, lam=1.0))
        comp.prox_step(model, lr=0.1)
        assert np.all(w.data == 0.0)
