"""Tests for loss functions and optimizers."""

import numpy as np
import pytest

from repro.nn import Adam, MSELoss, Parameter, SGD, SoftmaxCrossEntropy
from repro.nn.functional import log_softmax

from ..conftest import numeric_gradient


class TestSoftmaxCrossEntropy:
    def test_matches_manual(self, rng):
        logits = rng.normal(size=(4, 3))
        labels = np.array([0, 2, 1, 1])
        loss = SoftmaxCrossEntropy()(logits, labels)
        manual = -np.mean(log_softmax(logits, axis=1)[np.arange(4), labels])
        assert np.isclose(loss, manual)

    def test_perfect_prediction_low_loss(self):
        logits = np.eye(3) * 50.0
        assert SoftmaxCrossEntropy()(logits, np.array([0, 1, 2])) < 1e-6

    def test_gradient(self, rng):
        logits = rng.normal(size=(3, 4))
        labels = np.array([1, 0, 3])
        fn = SoftmaxCrossEntropy()
        fn(logits, labels)
        grad = fn.backward()

        def loss():
            return fn.forward(logits, labels)

        num = numeric_gradient(loss, logits)
        np.testing.assert_allclose(grad, num, atol=1e-6)

    def test_gradient_rows_sum_to_zero(self, rng):
        fn = SoftmaxCrossEntropy()
        fn(rng.normal(size=(5, 3)), np.array([0, 1, 2, 0, 1]))
        np.testing.assert_allclose(fn.backward().sum(axis=1), 0.0, atol=1e-12)

    def test_batch_mismatch(self, rng):
        with pytest.raises(ValueError):
            SoftmaxCrossEntropy()(rng.normal(size=(3, 2)), np.array([0, 1]))

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            SoftmaxCrossEntropy().backward()


class TestMSELoss:
    def test_value(self):
        loss = MSELoss()(np.array([1.0, 2.0]), np.array([1.0, 4.0]))
        assert np.isclose(loss, 2.0)

    def test_gradient(self, rng):
        pred = rng.normal(size=(3, 2))
        target = rng.normal(size=(3, 2))
        fn = MSELoss()
        fn(pred, target)
        np.testing.assert_allclose(
            fn.backward(), 2 * (pred - target) / pred.size
        )

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            MSELoss()(np.zeros(3), np.zeros(4))


def quadratic_params(rng):
    """Parameters of a convex quadratic; gradient = 2*(x - target)."""
    p = Parameter(rng.normal(size=5))
    target = rng.normal(size=5)
    return p, target


class TestSGD:
    def test_converges_on_quadratic(self, rng):
        p, target = quadratic_params(rng)
        opt = SGD([p], lr=0.1)
        for _ in range(200):
            p.zero_grad()
            p.grad += 2 * (p.data - target)
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-6)

    def test_momentum_accelerates(self, rng):
        losses = {}
        for momentum in (0.0, 0.9):
            p = Parameter(np.full(4, 10.0))
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(50):
                p.zero_grad()
                p.grad += 2 * p.data
                opt.step()
            losses[momentum] = float(np.sum(p.data ** 2))
        assert losses[0.9] < losses[0.0]

    def test_weight_decay_shrinks(self):
        p = Parameter(np.ones(3))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        opt.step()  # grad 0, decay pulls toward zero
        assert np.all(p.data < 1.0)

    def test_zero_grad(self):
        p = Parameter(np.ones(2))
        p.grad += 5.0
        SGD([p], lr=0.1).zero_grad()
        np.testing.assert_array_equal(p.grad, 0.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.ones(1))], lr=0.0)

    def test_rejects_bad_momentum(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.ones(1))], lr=0.1, momentum=1.0)


class TestAdam:
    def test_converges_on_quadratic(self, rng):
        p, target = quadratic_params(rng)
        opt = Adam([p], lr=0.1)
        for _ in range(500):
            p.zero_grad()
            p.grad += 2 * (p.data - target)
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-4)

    def test_first_step_magnitude(self):
        """Adam's first step is ~lr regardless of gradient scale."""
        for scale in (1e-3, 1e3):
            p = Parameter(np.zeros(1))
            opt = Adam([p], lr=0.01)
            p.grad += scale
            opt.step()
            assert np.isclose(abs(p.data[0]), 0.01, rtol=1e-3)
