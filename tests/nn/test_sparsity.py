"""Tests for core-block partitions and structured-sparsity utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.sparsity import CoreBlockPartition, block_of, split_boundaries


class TestSplitBoundaries:
    def test_even(self):
        assert split_boundaries(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_uneven_front_loaded(self):
        assert split_boundaries(10, 4) == [(0, 3), (3, 6), (6, 8), (8, 10)]

    def test_more_parts_than_items(self):
        bounds = split_boundaries(2, 4)
        assert bounds == [(0, 1), (1, 2), (2, 2), (2, 2)]

    def test_zero_total(self):
        assert split_boundaries(0, 3) == [(0, 0), (0, 0), (0, 0)]

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            split_boundaries(4, 0)

    @given(total=st.integers(0, 200), parts=st.integers(1, 32))
    @settings(max_examples=50, deadline=None)
    def test_tiles_exactly(self, total, parts):
        bounds = split_boundaries(total, parts)
        assert len(bounds) == parts
        assert bounds[0][0] == 0
        assert bounds[-1][1] == total
        for (a0, a1), (b0, b1) in zip(bounds, bounds[1:]):
            assert a1 == b0
        sizes = [b - a for a, b in bounds]
        assert max(sizes) - min(sizes) <= 1

    def test_block_of(self):
        bounds = split_boundaries(10, 3)
        assert block_of(0, bounds) == 0
        assert block_of(9, bounds) == 2
        with pytest.raises(IndexError):
            block_of(10, bounds)


class TestCoreBlockPartitionDense:
    def make(self, p=4):
        return CoreBlockPartition((8, 12), "dense", p)

    def test_block_slices(self):
        part = self.make()
        assert part.block_slices(1, 2) == (slice(2, 4), slice(6, 9))

    def test_block_view_mutates(self, rng):
        part = self.make()
        w = rng.normal(size=(8, 12))
        part.block_view(w, 0, 0)[...] = 0.0
        assert np.all(w[:2, :3] == 0)

    def test_block_norms(self, rng):
        part = self.make()
        w = rng.normal(size=(8, 12))
        norms = part.block_norms(w)
        assert norms.shape == (4, 4)
        expected = np.sqrt(np.sum(w[2:4, 3:6] ** 2))
        assert np.isclose(norms[1, 1], expected)

    def test_block_sizes_sum_to_total(self):
        part = self.make()
        assert part.block_sizes().sum() == 8 * 12

    def test_zero_mask(self, rng):
        part = self.make()
        w = rng.normal(size=(8, 12))
        w[0:2, 0:3] = 0.0
        mask = part.zero_mask(w)
        assert mask[0, 0]
        assert not mask[1, 1]

    def test_required_transfers_diagonal_false(self, rng):
        part = self.make()
        need = part.required_transfers(rng.normal(size=(8, 12)))
        assert not np.any(np.diagonal(need))
        off = ~np.eye(4, dtype=bool)
        assert np.all(need[off])

    def test_prune_blocks_protects_diagonal(self):
        part = self.make()
        w = np.full((8, 12), 1e-6)
        pruned = part.prune_blocks(w, threshold=1e-3)
        assert not np.any(np.diagonal(pruned))
        assert np.all(pruned[~np.eye(4, dtype=bool)])
        # Diagonal blocks survive.
        for i in range(4):
            assert np.any(w[part.block_slices(i, i)] != 0)

    def test_prune_blocks_threshold_respects_rms(self):
        part = self.make()
        w = np.zeros((8, 12))
        w[part.block_slices(0, 1)] = 0.5  # big block survives
        w[part.block_slices(0, 2)] = 1e-6
        pruned = part.prune_blocks(w, threshold=1e-3)
        assert not pruned[0, 1]
        assert pruned[0, 2]

    def test_apply_block_mask(self, rng):
        part = self.make()
        w = rng.normal(size=(8, 12))
        keep = np.eye(4, dtype=bool)
        part.apply_block_mask(w, keep)
        assert np.all(part.zero_mask(w) == ~keep)

    def test_apply_block_mask_bad_shape(self, rng):
        with pytest.raises(ValueError):
            self.make().apply_block_mask(rng.normal(size=(8, 12)), np.ones((3, 3), bool))

    def test_summarize(self, rng):
        part = self.make()
        w = rng.normal(size=(8, 12))
        part.apply_block_mask(w, np.eye(4, dtype=bool))
        summary = part.summarize(w)
        assert np.isclose(summary.zero_fraction, 12 / 16)
        assert np.isclose(summary.offdiag_zero_fraction, 1.0)

    def test_shape_check(self, rng):
        with pytest.raises(ValueError):
            self.make().block_norms(rng.normal(size=(9, 12)))


class TestCoreBlockPartitionConv:
    def test_conv_block_layout(self, rng):
        part = CoreBlockPartition((8, 4, 3, 3), "conv", 2)
        w = rng.normal(size=(8, 4, 3, 3))
        # producer = input channels (axis 1), consumer = output channels (axis 0)
        block = part.block_view(w, 0, 1)
        np.testing.assert_array_equal(block, w[4:8, 0:2])

    def test_conv_sizes_include_kernel(self):
        part = CoreBlockPartition((8, 4, 3, 3), "conv", 2)
        assert part.block_sizes()[0, 0] == 4 * 2 * 9

    def test_wrong_ndim(self):
        with pytest.raises(ValueError):
            CoreBlockPartition((8, 4, 3), "conv", 2)
        with pytest.raises(ValueError):
            CoreBlockPartition((8, 4, 3, 3), "dense", 2)

    def test_bad_kind(self):
        with pytest.raises(ValueError):
            CoreBlockPartition((8, 12), "sparse", 2)


class TestCustomBoundaries:
    def test_custom_producer_bounds(self, rng):
        part = CoreBlockPartition(
            (10, 8), "dense", 2,
            producer_bounds=[(0, 4), (4, 10)],
        )
        assert part.block_slices(1, 0) == (slice(4, 10), slice(0, 4))

    def test_bounds_must_tile(self):
        with pytest.raises(ValueError):
            CoreBlockPartition(
                (10, 8), "dense", 2, producer_bounds=[(0, 4), (5, 10)]
            )

    def test_bounds_must_cover(self):
        with pytest.raises(ValueError):
            CoreBlockPartition(
                (10, 8), "dense", 2, producer_bounds=[(0, 4), (4, 9)]
            )

    def test_bounds_count_must_match_cores(self):
        with pytest.raises(ValueError):
            CoreBlockPartition(
                (10, 8), "dense", 2, producer_bounds=[(0, 10)]
            )

    @given(
        rows=st.integers(4, 30),
        cols=st.integers(4, 30),
        cores=st.integers(1, 6),
    )
    @settings(max_examples=30, deadline=None)
    def test_blocks_partition_every_element(self, rows, cols, cores):
        """Every weight belongs to exactly one block."""
        part = CoreBlockPartition((rows, cols), "dense", cores)
        counts = np.zeros((rows, cols), dtype=int)
        for i in range(cores):
            for j in range(cores):
                counts[part.block_slices(i, j)] += 1
        assert np.all(counts == 1)
