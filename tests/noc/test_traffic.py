"""Tests for traffic matrices and synthetic patterns."""

import numpy as np
import pytest

from repro.noc import (
    Mesh2D,
    NoCConfig,
    TrafficMatrix,
    neighbor_traffic,
    transpose_traffic,
    uniform_random_traffic,
)


def simple_matrix(n=4, value=1000):
    m = np.zeros((n, n), dtype=np.int64)
    m[0, 1] = value
    m[2, 3] = value // 2
    return TrafficMatrix(m, label="t")


class TestTrafficMatrix:
    def test_total_bytes(self):
        assert simple_matrix().total_bytes == 1500

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            TrafficMatrix(np.zeros((2, 3)))

    def test_rejects_negative(self):
        m = np.zeros((2, 2))
        m[0, 1] = -5
        with pytest.raises(ValueError):
            TrafficMatrix(m)

    def test_rejects_self_traffic(self):
        m = np.zeros((2, 2))
        m[0, 0] = 5
        with pytest.raises(ValueError):
            TrafficMatrix(m)

    def test_to_packets_covers_bytes(self):
        cfg = NoCConfig()
        tm = simple_matrix()
        packets = tm.to_packets(cfg)
        payload = sum((p.num_flits - 1) * cfg.flit_bytes for p in packets)
        assert payload >= tm.total_bytes

    def test_to_packets_sources_and_dests(self):
        packets = simple_matrix().to_packets(NoCConfig())
        pairs = {(p.src, p.dst) for p in packets}
        assert pairs == {(0, 1), (2, 3)}

    def test_total_flit_hops(self):
        mesh = Mesh2D(2, 2)
        cfg = NoCConfig()
        m = np.zeros((4, 4), dtype=np.int64)
        m[0, 3] = 64  # 2 flits (head+1), 2 hops
        tm = TrafficMatrix(m)
        assert tm.total_flit_hops(mesh, cfg) == 2 * 2

    def test_weighted_average_distance(self):
        mesh = Mesh2D(2, 2)
        m = np.zeros((4, 4), dtype=np.int64)
        m[0, 1] = 100  # 1 hop
        m[0, 3] = 100  # 2 hops
        assert TrafficMatrix(m).weighted_average_distance(mesh) == 1.5

    def test_weighted_average_distance_empty(self):
        assert TrafficMatrix(np.zeros((4, 4))).weighted_average_distance(Mesh2D(2, 2)) == 0.0

    def test_scaled(self):
        tm = simple_matrix().scaled(0.5)
        assert tm.total_bytes == 750

    def test_scaled_invalid(self):
        with pytest.raises(ValueError):
            simple_matrix().scaled(0)

    def test_add(self):
        total = (simple_matrix() + simple_matrix()).total_bytes
        assert total == 3000

    def test_add_size_mismatch(self):
        other = TrafficMatrix(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            simple_matrix() + other

    def test_mesh_size_mismatch(self):
        with pytest.raises(ValueError):
            simple_matrix().total_flit_hops(Mesh2D(3, 3), NoCConfig())


class TestPatterns:
    def test_uniform_exact_total(self):
        tm = uniform_random_traffic(8, 123_457, seed=0)
        assert tm.total_bytes == 123_457

    def test_uniform_spread(self):
        tm = uniform_random_traffic(4, 12_000, seed=0)
        off = ~np.eye(4, dtype=bool)
        assert np.all(tm.bytes_matrix[off] >= 1000)

    def test_transpose_pattern(self):
        mesh = Mesh2D(4, 4)
        tm = transpose_traffic(mesh, 100)
        # Node (1,0)=1 sends to (0,1)=4.
        assert tm.bytes_matrix[1, 4] == 100
        # Diagonal nodes ((0,0), (1,1), ...) send nothing.
        assert tm.bytes_matrix[0].sum() == 0

    def test_transpose_needs_square(self):
        with pytest.raises(ValueError):
            transpose_traffic(Mesh2D(4, 2), 100)

    def test_neighbor_pattern(self):
        mesh = Mesh2D(4, 2)
        tm = neighbor_traffic(mesh, 50)
        assert tm.bytes_matrix[0, 1] == 50
        assert tm.bytes_matrix[3, 0] == 50  # wraps to row start
