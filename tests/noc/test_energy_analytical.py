"""Tests for the energy model and analytical drain estimates."""

import numpy as np
import pytest

from repro.noc import (
    EnergyBreakdown,
    Mesh2D,
    NoCConfig,
    NoCEnergyModel,
    NoCSimulator,
    estimate_drain_cycles,
    link_loads,
    neighbor_traffic,
    uniform_random_traffic,
)
from repro.noc.network import EnergyEvents


class TestEnergyBreakdown:
    def test_total(self):
        e = EnergyBreakdown(1.0, 2.0, 3.0, 4.0, 5.0)
        assert e.total_j == 15.0

    def test_add(self):
        a = EnergyBreakdown(1, 1, 1, 1, 1)
        b = EnergyBreakdown(2, 2, 2, 2, 2)
        assert (a + b).total_j == 15.0


class TestEnergyModel:
    def test_dynamic_energy_linear_in_events(self):
        model = NoCEnergyModel()
        events = EnergyEvents(
            buffer_writes=10, buffer_reads=10, crossbar_traversals=10,
            link_traversals=10, vc_allocations=2, sa_arbitrations=5,
        )
        double = EnergyEvents(
            buffer_writes=20, buffer_reads=20, crossbar_traversals=20,
            link_traversals=20, vc_allocations=4, sa_arbitrations=10,
        )
        assert np.isclose(
            2 * model.dynamic_energy(events).total_j,
            model.dynamic_energy(double).total_j,
        )

    def test_simulation_energy_includes_static(self):
        mesh = Mesh2D(2, 2)
        cfg = NoCConfig()
        sim = NoCSimulator(mesh, cfg)
        tm = neighbor_traffic(mesh, 128)
        sim.inject(tm.to_packets(cfg))
        stats = sim.run()
        model = NoCEnergyModel()
        with_static = model.simulation_energy(stats, 4)
        assert with_static.static_j > 0
        assert with_static.total_j > model.dynamic_energy(stats.energy).total_j

    def test_analytical_link_energy_matches_sim(self):
        """Link traversal counts are exact in both models."""
        mesh = Mesh2D(4, 4)
        cfg = NoCConfig()
        tm = uniform_random_traffic(16, 100_000, seed=3)
        sim = NoCSimulator(mesh, cfg)
        sim.inject(tm.to_packets(cfg))
        stats = sim.run()
        model = NoCEnergyModel()
        assert np.isclose(
            model.dynamic_energy(stats.energy).link_j,
            model.analytical_energy(tm, mesh, cfg).link_j,
        )

    def test_analytical_total_close_to_sim(self):
        mesh = Mesh2D(4, 4)
        cfg = NoCConfig()
        tm = uniform_random_traffic(16, 100_000, seed=4)
        sim = NoCSimulator(mesh, cfg)
        sim.inject(tm.to_packets(cfg))
        stats = sim.run()
        model = NoCEnergyModel()
        sim_dyn = model.dynamic_energy(stats.energy).total_j
        ana = model.analytical_energy(tm, mesh, cfg).total_j
        assert 0.7 < ana / sim_dyn < 1.3


class TestLinkLoads:
    def test_single_flow(self):
        mesh = Mesh2D(4, 1)
        cfg = NoCConfig()
        m = np.zeros((4, 4), dtype=np.int64)
        m[0, 3] = 64  # 2 flits
        from repro.noc import TrafficMatrix

        loads = link_loads(TrafficMatrix(m), mesh, cfg)
        assert loads == {(0, 1): 2, (1, 2): 2, (2, 3): 2}

    def test_loads_respect_xy(self):
        mesh = Mesh2D(2, 2)
        cfg = NoCConfig()
        m = np.zeros((4, 4), dtype=np.int64)
        m[0, 3] = 64
        from repro.noc import TrafficMatrix

        loads = link_loads(TrafficMatrix(m), mesh, cfg)
        # XY: 0 -> 1 -> 3, never through 2.
        assert (0, 1) in loads and (1, 3) in loads
        assert (0, 2) not in loads


class TestAnalyticalEstimate:
    def test_components(self):
        mesh = Mesh2D(4, 4)
        cfg = NoCConfig()
        tm = uniform_random_traffic(16, 100_000, seed=0)
        est = estimate_drain_cycles(tm, mesh, cfg)
        assert est.source_bound > 0
        assert est.sink_bound > 0
        assert est.link_bound > 0
        assert est.head_latency > 0
        assert est.cycles == max(
            est.source_bound, est.sink_bound, est.link_bound
        ) + est.head_latency

    def test_empty_traffic(self):
        mesh = Mesh2D(2, 2)
        from repro.noc import TrafficMatrix

        est = estimate_drain_cycles(TrafficMatrix(np.zeros((4, 4))), mesh)
        assert est.cycles == 0

    def test_scales_with_volume(self):
        """The bandwidth-bound component scales ~linearly with volume."""
        mesh = Mesh2D(4, 4)
        small = estimate_drain_cycles(uniform_random_traffic(16, 50_000, seed=1), mesh)
        big = estimate_drain_cycles(uniform_random_traffic(16, 500_000, seed=1), mesh)
        small_drain = small.cycles - small.head_latency
        big_drain = big.cycles - big.head_latency
        # Head-flit overhead makes small messages relatively more expensive,
        # so the ratio lands slightly below exactly 10.
        assert 6 < big_drain / small_drain < 12

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            estimate_drain_cycles(uniform_random_traffic(4, 1000), Mesh2D(4, 4))
