"""Bit-exactness of the event-driven engine against the reference simulator.

``NoCSimulator`` skips idle cycles, precomputes routes, and batches work per
event record; ``ReferenceNoCSimulator`` steps every cycle with the original
straight-line control flow.  Both must produce *identical* ``NoCStats`` —
including every :class:`EnergyEvents` counter — on any traffic pattern, so
the property test below drives both engines with randomized meshes, router
configurations, and packet sets and asserts full equality.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc import (
    Mesh2D,
    NoCConfig,
    NoCSimulator,
    Packet,
    ReferenceNoCSimulator,
    neighbor_traffic,
    transpose_traffic,
    uniform_random_traffic,
)


def run_both(mesh: Mesh2D, config: NoCConfig, make_packets):
    """Run both engines on fresh packet lists (Packet/Flit state is mutated)."""
    fast = NoCSimulator(mesh, config)
    fast.inject(make_packets())
    fast_stats = fast.run()

    ref = ReferenceNoCSimulator(mesh, config)
    ref.inject(make_packets())
    ref_stats = ref.run()
    return fast_stats, ref_stats


def assert_identical(fast, ref):
    assert fast == ref, f"engine divergence:\nfast={fast}\nref ={ref}"
    # Belt and braces: dataclass __eq__ already covers energy, but spell out
    # the counters so a failure names the diverging one.
    for field in (
        "buffer_writes",
        "buffer_reads",
        "crossbar_traversals",
        "link_traversals",
        "vc_allocations",
        "sa_arbitrations",
    ):
        assert getattr(fast.energy, field) == getattr(ref.energy, field), field


@st.composite
def mesh_and_traffic(draw):
    width = draw(st.integers(1, 4))
    height = draw(st.integers(1, 4))
    if width * height < 2:
        width, height = 2, 2
    config = NoCConfig(
        num_vcs=draw(st.integers(1, 4)),
        vc_buffer_flits=draw(st.integers(1, 4)),
        router_stages=draw(st.integers(1, 4)),
        link_latency=draw(st.integers(1, 3)),
        physical_channels=draw(st.integers(1, 3)),
    )
    num_nodes = width * height
    n_packets = draw(st.integers(1, 25))
    specs = []
    for _ in range(n_packets):
        src = draw(st.integers(0, num_nodes - 1))
        dst = draw(st.integers(0, num_nodes - 1).filter(lambda d: d != src))
        specs.append(
            (src, dst, draw(st.integers(2, 8)), draw(st.integers(0, 40)))
        )
    return Mesh2D(width, height), config, specs


class TestPropertyEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(mesh_and_traffic())
    def test_random_configs_and_packets(self, case):
        mesh, config, specs = case

        def make_packets():
            return [
                Packet(src=s, dst=d, num_flits=f, injection_cycle=t)
                for s, d, f, t in specs
            ]

        fast, ref = run_both(mesh, config, make_packets)
        assert_identical(fast, ref)


class TestPatternEquivalence:
    """Deterministic corpus: the canonical burst patterns on both mesh sizes."""

    def _check(self, mesh, traffic, config=None):
        config = config or NoCConfig()
        fast, ref = run_both(mesh, config, lambda: traffic.to_packets(config))
        assert_identical(fast, ref)

    def test_uniform_4x4(self):
        mesh = Mesh2D(4, 4)
        self._check(mesh, uniform_random_traffic(16, 40_000, seed=3))

    def test_uniform_8x8(self):
        mesh = Mesh2D(8, 8)
        self._check(mesh, uniform_random_traffic(64, 60_000, seed=4))

    def test_transpose_4x4(self):
        mesh = Mesh2D(4, 4)
        self._check(mesh, transpose_traffic(mesh, 2_000))

    def test_neighbor_4x4(self):
        mesh = Mesh2D(4, 4)
        self._check(mesh, neighbor_traffic(mesh, 2_000))

    def test_single_vc_single_channel(self):
        mesh = Mesh2D(4, 4)
        cfg = NoCConfig(num_vcs=1, physical_channels=1)
        self._check(mesh, transpose_traffic(mesh, 1_000), cfg)

    def test_staggered_injection(self):
        mesh = Mesh2D(4, 4)
        rng = np.random.default_rng(11)
        specs = []
        while len(specs) < 40:
            src = int(rng.integers(0, 16))
            dst = int(rng.integers(0, 16))
            if src == dst:
                continue
            specs.append(
                (src, dst, int(rng.integers(2, 12)), int(rng.integers(0, 200)))
            )
        fast, ref = run_both(
            mesh,
            NoCConfig(),
            lambda: [
                Packet(src=s, dst=d, num_flits=f, injection_cycle=t)
                for s, d, f, t in specs
                if s != d
            ],
        )
        assert_identical(fast, ref)

    def test_idle_gap_between_bursts(self):
        """Long idle spans — the event engine's fast path — stay bit-exact."""
        mesh = Mesh2D(4, 4)

        def make_packets():
            return [
                Packet(src=0, dst=15, num_flits=6, injection_cycle=0),
                Packet(src=5, dst=6, num_flits=4, injection_cycle=5_000),
                Packet(src=10, dst=2, num_flits=8, injection_cycle=20_000),
            ]

        fast, ref = run_both(mesh, NoCConfig(), make_packets)
        assert_identical(fast, ref)
