"""Tests for mesh topology."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc import Mesh2D, mesh_dims
from repro.noc.topology import EAST, LOCAL, NORTH, SOUTH, WEST


class TestMeshDims:
    def test_square(self):
        assert mesh_dims(16) == (4, 4)

    def test_rectangles(self):
        assert mesh_dims(8) == (4, 2)
        assert mesh_dims(32) == (8, 4)

    def test_prime(self):
        assert mesh_dims(7) == (7, 1)

    def test_one(self):
        assert mesh_dims(1) == (1, 1)

    def test_invalid(self):
        with pytest.raises(ValueError):
            mesh_dims(0)


class TestMesh2D:
    def test_coords_row_major(self):
        mesh = Mesh2D(4, 4)
        assert mesh.coords(0) == (0, 0)
        assert mesh.coords(5) == (1, 1)
        assert mesh.coords(15) == (3, 3)

    def test_node_at_inverse_of_coords(self):
        mesh = Mesh2D(4, 2)
        for node in range(8):
            assert mesh.node_at(*mesh.coords(node)) == node

    def test_node_at_out_of_range(self):
        with pytest.raises(ValueError):
            Mesh2D(4, 2).node_at(4, 0)

    def test_hop_distance_manhattan(self):
        mesh = Mesh2D(4, 4)
        assert mesh.hop_distance(0, 15) == 6
        assert mesh.hop_distance(0, 0) == 0
        assert mesh.hop_distance(0, 3) == 3

    def test_distance_matrix_symmetric(self):
        d = Mesh2D(4, 4).distance_matrix()
        np.testing.assert_array_equal(d, d.T)
        assert np.all(np.diagonal(d) == 0)

    def test_neighbors(self):
        mesh = Mesh2D(4, 4)
        assert mesh.neighbor(5, EAST) == 6
        assert mesh.neighbor(5, WEST) == 4
        assert mesh.neighbor(5, NORTH) == 1
        assert mesh.neighbor(5, SOUTH) == 9

    def test_edge_neighbors_none(self):
        mesh = Mesh2D(4, 4)
        assert mesh.neighbor(0, WEST) is None
        assert mesh.neighbor(0, NORTH) is None
        assert mesh.neighbor(15, EAST) is None
        assert mesh.neighbor(15, SOUTH) is None

    def test_local_port_has_no_neighbor(self):
        with pytest.raises(ValueError):
            Mesh2D(2, 2).neighbor(0, LOCAL)

    def test_links_count(self):
        # 2D mesh has 2*(w-1)*h + 2*w*(h-1) unidirectional links.
        mesh = Mesh2D(4, 4)
        assert len(mesh.links()) == 2 * 3 * 4 + 2 * 4 * 3

    def test_links_are_adjacent(self):
        mesh = Mesh2D(3, 2)
        for a, b in mesh.links():
            assert mesh.hop_distance(a, b) == 1

    def test_diameter(self):
        assert Mesh2D(4, 4).diameter == 6
        assert Mesh2D(8, 4).diameter == 10

    def test_bisection_links(self):
        assert Mesh2D(4, 4).bisection_links == 8
        assert Mesh2D(8, 4).bisection_links == 8

    def test_average_distance_known(self):
        # 2x1 mesh: the two ordered pairs are 1 hop apart.
        assert Mesh2D(2, 1).average_distance() == 1.0

    def test_average_distance_single_node(self):
        assert Mesh2D(1, 1).average_distance() == 0.0

    def test_for_nodes(self):
        mesh = Mesh2D.for_nodes(32)
        assert (mesh.width, mesh.height) == (8, 4)

    @given(nodes=st.sampled_from([2, 4, 6, 8, 9, 12, 16, 32]))
    @settings(max_examples=10, deadline=None)
    def test_triangle_inequality(self, nodes):
        mesh = Mesh2D.for_nodes(nodes)
        d = mesh.distance_matrix()
        for a in range(nodes):
            for b in range(nodes):
                for c in range(nodes):
                    assert d[a, c] <= d[a, b] + d[b, c]


class TestPortWiring:
    def test_opposite_map_is_involution(self):
        from repro.noc.topology import OPPOSITE

        for port, opp in OPPOSITE.items():
            assert OPPOSITE[opp] == port

    def test_neighbor_symmetry(self):
        """If B is A's east neighbour, A is B's west neighbour."""
        from repro.noc.topology import EAST, NORTH, OPPOSITE, SOUTH, WEST

        mesh = Mesh2D(4, 3)
        for node in range(mesh.num_nodes):
            for port in (EAST, WEST, NORTH, SOUTH):
                nb = mesh.neighbor(node, port)
                if nb is not None:
                    assert mesh.neighbor(nb, OPPOSITE[port]) == node
