"""Tests for packets, flits, and message segmentation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc import Flit, NoCConfig, Packet, segment_message


class TestNoCConfig:
    def test_table2_defaults(self):
        cfg = NoCConfig()
        assert cfg.flit_bits == 512
        assert cfg.max_packet_flits == 20
        assert cfg.num_vcs == 3
        assert cfg.physical_channels == 2
        assert cfg.router_stages == 3

    def test_derived(self):
        cfg = NoCConfig()
        assert cfg.flit_bytes == 64
        assert cfg.payload_flits_per_packet == 19
        assert cfg.packet_payload_bytes == 19 * 64

    def test_validation(self):
        with pytest.raises(ValueError):
            NoCConfig(flit_bits=0)
        with pytest.raises(ValueError):
            NoCConfig(flit_bits=100)  # not multiple of 8
        with pytest.raises(ValueError):
            NoCConfig(max_packet_flits=1)
        with pytest.raises(ValueError):
            NoCConfig(num_vcs=0)
        with pytest.raises(ValueError):
            NoCConfig(physical_channels=0)
        with pytest.raises(ValueError):
            NoCConfig(core_clock_divider=0)


class TestPacket:
    def test_requires_two_flits(self):
        with pytest.raises(ValueError):
            Packet(src=0, dst=1, num_flits=1)

    def test_no_self_traffic(self):
        with pytest.raises(ValueError):
            Packet(src=2, dst=2, num_flits=3)

    def test_latency_before_delivery(self):
        p = Packet(src=0, dst=1, num_flits=2)
        with pytest.raises(RuntimeError):
            _ = p.latency

    def test_unique_ids(self):
        a = Packet(src=0, dst=1, num_flits=2)
        b = Packet(src=0, dst=1, num_flits=2)
        assert a.pid != b.pid


class TestFlit:
    def test_head_tail_flags(self):
        p = Packet(src=0, dst=1, num_flits=3)
        flits = [Flit(p, i) for i in range(3)]
        assert flits[0].is_head and not flits[0].is_tail
        assert not flits[1].is_head and not flits[1].is_tail
        assert flits[2].is_tail and not flits[2].is_head

    def test_single_payload_packet(self):
        p = Packet(src=0, dst=1, num_flits=2)
        tail = Flit(p, 1)
        assert tail.is_tail and not tail.is_head


class TestSegmentation:
    def test_small_message_one_packet(self):
        cfg = NoCConfig()
        pkts = segment_message(0, 1, 64, cfg)
        assert len(pkts) == 1
        assert pkts[0].num_flits == 2  # head + one payload flit

    def test_exact_payload(self):
        cfg = NoCConfig()
        pkts = segment_message(0, 1, cfg.packet_payload_bytes, cfg)
        assert len(pkts) == 1
        assert pkts[0].num_flits == cfg.max_packet_flits

    def test_one_byte_over(self):
        cfg = NoCConfig()
        pkts = segment_message(0, 1, cfg.packet_payload_bytes + 1, cfg)
        assert len(pkts) == 2
        assert pkts[1].num_flits == 2

    def test_zero_bytes(self):
        assert segment_message(0, 1, 0, NoCConfig()) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            segment_message(0, 1, -1, NoCConfig())

    @given(num_bytes=st.integers(1, 100_000))
    @settings(max_examples=50, deadline=None)
    def test_payload_capacity_covers_message(self, num_bytes):
        cfg = NoCConfig()
        pkts = segment_message(0, 1, num_bytes, cfg)
        payload_capacity = sum((p.num_flits - 1) * cfg.flit_bytes for p in pkts)
        assert payload_capacity >= num_bytes
        # No packet is gratuitously large: capacity overshoot < one flit per
        # packet plus one flit.
        assert payload_capacity - num_bytes < cfg.flit_bytes * (len(pkts) + 1)

    @given(num_bytes=st.integers(1, 100_000))
    @settings(max_examples=30, deadline=None)
    def test_all_packets_within_max_size(self, num_bytes):
        cfg = NoCConfig()
        for p in segment_message(0, 1, num_bytes, cfg):
            assert 2 <= p.num_flits <= cfg.max_packet_flits
