"""Tests for dimension-ordered routing."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc import Mesh2D, xy_route_path, xy_route_port
from repro.noc.topology import EAST, LOCAL, NORTH, SOUTH, WEST


class TestRoutePort:
    def test_arrived(self):
        mesh = Mesh2D(4, 4)
        assert xy_route_port(mesh, 5, 5) == LOCAL

    def test_x_first(self):
        mesh = Mesh2D(4, 4)
        # From (0,0) to (2,2): go EAST first even though SOUTH also reduces.
        assert xy_route_port(mesh, 0, 10) == EAST

    def test_directions(self):
        mesh = Mesh2D(4, 4)
        assert xy_route_port(mesh, 5, 6) == EAST
        assert xy_route_port(mesh, 5, 4) == WEST
        assert xy_route_port(mesh, 5, 1) == NORTH
        assert xy_route_port(mesh, 5, 9) == SOUTH


class TestRoutePath:
    def test_path_endpoints(self):
        mesh = Mesh2D(4, 4)
        path = xy_route_path(mesh, 0, 15)
        assert path[0] == 0 and path[-1] == 15

    def test_path_length_is_manhattan(self):
        mesh = Mesh2D(4, 4)
        for src in range(16):
            for dst in range(16):
                path = xy_route_path(mesh, src, dst)
                assert len(path) - 1 == mesh.hop_distance(src, dst)

    def test_x_then_y_shape(self):
        mesh = Mesh2D(4, 4)
        path = xy_route_path(mesh, 0, 10)  # (0,0) -> (2,2)
        coords = [mesh.coords(n) for n in path]
        assert coords == [(0, 0), (1, 0), (2, 0), (2, 1), (2, 2)]

    def test_self_path(self):
        assert xy_route_path(Mesh2D(2, 2), 3, 3) == [3]

    @given(
        nodes=st.sampled_from([4, 8, 16, 32]),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=25, deadline=None)
    def test_consecutive_hops_adjacent(self, nodes, seed):
        import numpy as np

        mesh = Mesh2D.for_nodes(nodes)
        rng = np.random.default_rng(seed)
        src, dst = rng.integers(0, nodes, size=2)
        path = xy_route_path(mesh, int(src), int(dst))
        for a, b in zip(path, path[1:]):
            assert mesh.hop_distance(a, b) == 1

    def test_deterministic(self):
        mesh = Mesh2D(4, 4)
        assert xy_route_path(mesh, 3, 12) == xy_route_path(mesh, 3, 12)


class TestRouteTables:
    """Cached per-mesh-shape XY route tables (repro.noc.routing.route_tables)."""

    def test_hops_match_manhattan(self):
        import numpy as np

        from repro.noc import route_tables

        mesh = Mesh2D(4, 4)
        tables = route_tables(mesh)
        expected = np.array(
            [[mesh.hop_distance(s, d) for d in range(16)] for s in range(16)]
        )
        assert np.array_equal(tables.hops, expected)

    def test_usage_matches_route_paths(self):
        from repro.noc import route_tables

        mesh = Mesh2D(3, 3)
        tables = route_tables(mesh)
        for s in range(9):
            for d in range(9):
                path = xy_route_path(mesh, s, d)
                walked = {(a, b) for a, b in zip(path, path[1:])}
                row = tables.usage[s * 9 + d]
                used = {tables.links[i] for i in range(len(row)) if row[i]}
                assert used == walked

    def test_usage_row_sums_are_hop_counts(self):
        from repro.noc import route_tables

        mesh = Mesh2D(4, 2)
        tables = route_tables(mesh)
        for s in range(8):
            for d in range(8):
                assert tables.usage[s * 8 + d].sum() == tables.hops[s, d]

    def test_links_order_matches_mesh(self):
        from repro.noc import route_tables

        mesh = Mesh2D(4, 4)
        assert list(route_tables(mesh).links) == mesh.links()

    def test_cached_per_shape(self):
        from repro.noc import route_tables

        assert route_tables(Mesh2D(4, 4)) is route_tables(Mesh2D(4, 4))
        assert route_tables(Mesh2D(4, 4)) is not route_tables(Mesh2D(2, 2))

    def test_arrays_are_readonly(self):
        import numpy as np
        import pytest

        from repro.noc import route_tables

        tables = route_tables(Mesh2D(2, 2))
        with pytest.raises((ValueError, RuntimeError)):
            tables.hops[0, 0] = 99
        with pytest.raises((ValueError, RuntimeError)):
            tables.usage[0, 0] = 99
        assert isinstance(tables.link_index((0, 1)), (int, np.integer))
