"""Property tests pinning the analytical drain model to the cycle simulator.

The vectorized plan-cost oracle (``repro.plancost``) trusts
:func:`~repro.noc.analytical.estimate_drain_cycles` to stand in for the
cycle-level :class:`~repro.noc.network.NoCSimulator`.  These hypothesis
suites state the contract explicitly and hold it across mesh shapes, NoC
configurations (channel counts, packet sizes, flit widths, router depths),
and traffic skews:

* the bandwidth term ``max(source, sink, link)`` is a true **lower bound**
  on simulated drain cycles — never violated;
* the full estimate brackets the simulator within a **stated factor**:
  ``est / UNDER_FACTOR <= sim <= OVER_FACTOR * est``.  Empirically the
  sim/est ratio spans ~[0.96, 3.3] (congestion at single-channel, dense,
  heavy load is where the contention-free estimate undercounts most), so
  the gates are 4.0x over and 1.5x under.

``message_flits`` is additionally pinned to the packet segmenter: the
closed-form flit count must equal walking :func:`segment_message`.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc import (
    Mesh2D,
    NoCConfig,
    NoCSimulator,
    TrafficMatrix,
    estimate_drain_cycles,
    uniform_random_traffic,
)
from repro.noc.analytical import message_flits
from repro.noc.packet import segment_message

#: Stated agreement factors gated by this suite (see module docstring).
OVER_FACTOR = 4.0
UNDER_FACTOR = 1.5

MESH_SHAPES = ((2, 2), (4, 2), (3, 3), (4, 4))

noc_configs = st.sampled_from(
    [
        NoCConfig(),
        NoCConfig(physical_channels=1),
        NoCConfig(max_packet_flits=4),
        NoCConfig(flit_bits=256),
        NoCConfig(router_stages=2, link_latency=2),
        NoCConfig(physical_channels=1, max_packet_flits=4),
    ]
)


def _skewed_matrix(n: int, rng: np.random.Generator, kind: str) -> np.ndarray:
    m = np.zeros((n, n), dtype=np.int64)
    if kind == "uniform":
        m = rng.integers(0, 20_000, size=(n, n))
    elif kind == "hotspot":  # everyone converges on node 0 — sink-bound
        m[1:, 0] = rng.integers(1, 30_000, size=n - 1)
    elif kind == "fanout":  # node 0 feeds everyone — source-bound
        m[0, 1:] = rng.integers(1, 30_000, size=n - 1)
    elif kind == "flow":  # one fat corner-to-corner flow — link/head-bound
        m[0, n - 1] = rng.integers(1, 500_000)
    elif kind == "sparse":
        m = rng.integers(0, 3, size=(n, n)) * rng.integers(1, 3_000, size=(n, n))
    np.fill_diagonal(m, 0)
    return m.astype(np.int64)


traffic_kinds = st.sampled_from(["uniform", "hotspot", "fanout", "flow", "sparse"])


class TestMessageFlits:
    @given(size=st.integers(0, 500_000), config=noc_configs)
    @settings(max_examples=60, deadline=None)
    def test_matches_segmenter(self, size, config):
        closed_form = int(message_flits(np.array([[0, size], [0, 0]]), config)[0, 1])
        packets = segment_message(0, 1, size, config)
        assert closed_form == sum(p.num_flits for p in packets)

    def test_batched_shape_and_zero(self):
        b = np.array([[0, 0, 1], [1216, 0, 1217], [64, 65, 0]])
        flits = message_flits(b, NoCConfig())
        assert flits.shape == b.shape
        assert flits[0, 0] == 0 and flits[0, 2] == 2  # 1 head + 1 payload flit
        assert flits[1, 0] == 1 + 19  # exactly one full packet
        assert flits[1, 2] == 2 + 20  # one byte over: second packet


class TestSimulatorAgreement:
    @given(
        shape=st.sampled_from(MESH_SHAPES),
        config=noc_configs,
        kind=traffic_kinds,
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=60, deadline=None)
    def test_bracketing(self, shape, config, kind, seed):
        """Lower bound holds; sim within the stated factors of the estimate."""
        w, h = shape
        rng = np.random.default_rng(seed)
        m = _skewed_matrix(w * h, rng, kind)
        if m.sum() == 0:
            return
        mesh = Mesh2D(w, h)
        tm = TrafficMatrix(m)
        sim = NoCSimulator(mesh, config)
        sim.inject(tm.to_packets(config))
        cycles = sim.run().cycles
        est = estimate_drain_cycles(tm, mesh, config)
        lower = max(est.source_bound, est.sink_bound, est.link_bound)
        assert cycles >= lower
        assert cycles <= OVER_FACTOR * est.cycles
        assert cycles >= est.cycles / UNDER_FACTOR

    @given(size=st.integers(64, 100_000))
    @settings(max_examples=30, deadline=None)
    def test_single_flow_tight(self, size):
        """One contention-free flow: sim within [est, 2 * est].

        The estimate spreads a flow over all physical channels while the
        wormhole simulator serializes each packet on one channel, so a
        lone flow can run up to ``physical_channels`` times the bandwidth
        bound — but never below the estimate.
        """
        mesh = Mesh2D(4, 4)
        config = NoCConfig()
        m = np.zeros((16, 16), dtype=np.int64)
        m[0, 15] = size
        tm = TrafficMatrix(m)
        sim = NoCSimulator(mesh, config)
        sim.inject(tm.to_packets(config))
        cycles = sim.run().cycles
        est = estimate_drain_cycles(tm, mesh, config)
        assert est.cycles <= cycles <= 2 * est.cycles

    @given(nodes=st.sampled_from([4, 8, 16]), volume=st.integers(1_000, 300_000))
    @settings(max_examples=20, deadline=None)
    def test_uniform_traffic_bracketing(self, nodes, volume):
        mesh = Mesh2D.for_nodes(nodes)
        config = NoCConfig()
        tm = uniform_random_traffic(nodes, volume, seed=volume)
        sim = NoCSimulator(mesh, config)
        sim.inject(tm.to_packets(config))
        cycles = sim.run().cycles
        est = estimate_drain_cycles(tm, mesh, config)
        assert est.cycles / UNDER_FACTOR <= cycles <= OVER_FACTOR * est.cycles
