"""Tests for the cycle-level wormhole simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc import (
    Mesh2D,
    NoCConfig,
    NoCSimulator,
    Packet,
    estimate_drain_cycles,
    neighbor_traffic,
    segment_message,
    transpose_traffic,
    uniform_random_traffic,
)


def run_sim(mesh, packets, config=None):
    sim = NoCSimulator(mesh, config or NoCConfig())
    sim.inject(packets)
    return sim.run()


class TestSinglePacket:
    def test_delivered(self):
        mesh = Mesh2D(4, 4)
        stats = run_sim(mesh, [Packet(src=0, dst=15, num_flits=20)])
        assert stats.packets_delivered == 1
        assert stats.flits_delivered == 20

    def test_flit_hops_equals_flits_times_distance(self):
        mesh = Mesh2D(4, 4)
        stats = run_sim(mesh, [Packet(src=0, dst=15, num_flits=20)])
        assert stats.flit_hops == 20 * mesh.hop_distance(0, 15)

    def test_zero_load_latency_formula(self):
        """Documented model: head = (stages-1) + hops*(stages+link-1); the
        tail follows one flit per cycle at a single physical channel."""
        mesh = Mesh2D(4, 1)
        cfg = NoCConfig(physical_channels=1)
        n_flits = 8
        stats = run_sim(mesh, [Packet(src=0, dst=3, num_flits=n_flits)], cfg)
        hops = 3
        per_hop = cfg.router_stages + cfg.link_latency - 1
        expected_head = (cfg.router_stages - 1) + per_hop * hops
        expected_tail = expected_head + (n_flits - 1)
        assert stats.max_packet_latency == expected_tail

    def test_closer_destination_is_faster(self):
        mesh = Mesh2D(4, 4)
        near = run_sim(mesh, [Packet(src=0, dst=1, num_flits=10)])
        far = run_sim(mesh, [Packet(src=0, dst=15, num_flits=10)])
        assert near.cycles < far.cycles

    def test_physical_channels_speed_up_concurrent_packets(self):
        """One wormhole packet is bound by its VC's credit loop, so the
        second physical channel pays off once several packets (on different
        VCs) compete for the same link."""
        mesh = Mesh2D(2, 1)
        def packets():
            return [Packet(src=0, dst=1, num_flits=20) for _ in range(3)]
        slow = run_sim(mesh, packets(), NoCConfig(physical_channels=1))
        fast = run_sim(mesh, packets(), NoCConfig(physical_channels=2))
        assert fast.cycles < slow.cycles


class TestConservation:
    def test_all_packets_delivered_uniform(self):
        mesh = Mesh2D(4, 4)
        tm = uniform_random_traffic(16, 200_000, seed=5)
        packets = tm.to_packets(NoCConfig())
        stats = run_sim(mesh, packets)
        assert stats.packets_delivered == len(packets)
        assert stats.flits_delivered == sum(p.num_flits for p in packets)

    def test_flit_hops_match_analytical(self):
        mesh = Mesh2D(4, 4)
        cfg = NoCConfig()
        tm = uniform_random_traffic(16, 50_000, seed=6)
        stats = run_sim(mesh, tm.to_packets(cfg), cfg)
        assert stats.flit_hops == tm.total_flit_hops(mesh, cfg)

    def test_energy_events_consistent(self):
        """Each flit is written+read once per router it enters."""
        mesh = Mesh2D(4, 4)
        cfg = NoCConfig()
        tm = neighbor_traffic(mesh, 1216)
        stats = run_sim(mesh, tm.to_packets(cfg), cfg)
        e = stats.energy
        # Every buffered flit is eventually read out.
        assert e.buffer_reads == e.buffer_writes
        # Crossbar traversals = hops + final ejections.
        assert e.crossbar_traversals == stats.flit_hops + stats.flits_delivered
        assert e.link_traversals == stats.flit_hops

    def test_empty_run(self):
        stats = NoCSimulator(Mesh2D(2, 2), NoCConfig()).run()
        assert stats.cycles == 0
        assert stats.packets_delivered == 0


class TestContention:
    def test_shared_sink_serializes(self):
        """Two sources to one sink take ~2x one source's time."""
        mesh = Mesh2D(4, 1)
        cfg = NoCConfig(physical_channels=1)
        one = run_sim(mesh, segment_message(1, 0, 5000, cfg), cfg)
        two = run_sim(
            mesh,
            segment_message(1, 0, 5000, cfg) + segment_message(2, 0, 5000, cfg),
            cfg,
        )
        assert two.cycles > 1.6 * one.cycles

    def test_disjoint_flows_parallel(self):
        """Flows on disjoint paths should not slow each other much."""
        mesh = Mesh2D(4, 2)
        cfg = NoCConfig()
        a = segment_message(0, 3, 10_000, cfg)  # top row
        b = segment_message(4, 7, 10_000, cfg)  # bottom row
        solo = run_sim(mesh, segment_message(0, 3, 10_000, cfg), cfg).cycles
        both = run_sim(mesh, a + b, cfg).cycles
        assert both < 1.3 * solo

    def test_injection_cycle_respected(self):
        mesh = Mesh2D(2, 1)
        late = Packet(src=0, dst=1, num_flits=2, injection_cycle=500)
        stats = run_sim(mesh, [late])
        assert stats.cycles >= 500

    def test_more_load_takes_longer(self):
        mesh = Mesh2D(4, 4)
        small = run_sim(mesh, uniform_random_traffic(16, 50_000, seed=1).to_packets(NoCConfig()))
        big = run_sim(mesh, uniform_random_traffic(16, 200_000, seed=1).to_packets(NoCConfig()))
        assert big.cycles > small.cycles


class TestAgainstAnalyticalBound:
    @pytest.mark.parametrize("pattern", ["uniform", "transpose", "neighbor"])
    def test_sim_at_or_above_bound(self, pattern):
        mesh = Mesh2D(4, 4)
        cfg = NoCConfig()
        if pattern == "uniform":
            tm = uniform_random_traffic(16, 150_000, seed=2)
        elif pattern == "transpose":
            tm = transpose_traffic(mesh, 5000)
        else:
            tm = neighbor_traffic(mesh, 5000)
        stats = run_sim(mesh, tm.to_packets(cfg), cfg)
        bound = estimate_drain_cycles(tm, mesh, cfg).cycles
        # First-order estimate: the sim stays within a small factor of it.
        assert 0.5 * bound <= stats.cycles <= 6 * bound

    @given(seed=st.integers(0, 30))
    @settings(max_examples=10, deadline=None)
    def test_random_traffic_always_drains(self, seed):
        """Deadlock-freedom probe: random patterns always complete."""
        rng = np.random.default_rng(seed)
        mesh = Mesh2D.for_nodes(8)
        m = np.zeros((8, 8), dtype=np.int64)
        for _ in range(10):
            s, d = rng.integers(0, 8, size=2)
            if s != d:
                m[s, d] += int(rng.integers(64, 5000))
        from repro.noc import TrafficMatrix

        tm = TrafficMatrix(m)
        packets = tm.to_packets(NoCConfig())
        stats = run_sim(mesh, packets)
        assert stats.packets_delivered == len(packets)


class TestValidation:
    def test_rejects_offmesh_packet(self):
        sim = NoCSimulator(Mesh2D(2, 2), NoCConfig())
        with pytest.raises(ValueError):
            sim.inject([Packet(src=0, dst=7, num_flits=2)])

    def test_max_cycles_guard(self):
        mesh = Mesh2D(4, 4)
        sim = NoCSimulator(mesh, NoCConfig())
        sim.inject(uniform_random_traffic(16, 500_000, seed=0).to_packets(NoCConfig()))
        with pytest.raises(RuntimeError):
            sim.run(max_cycles=10)


class TestWormholeInvariants:
    def test_flits_eject_in_order(self):
        """All flits of a packet arrive in index order (wormhole property)."""
        mesh = Mesh2D(4, 4)
        cfg = NoCConfig()
        ejected = []

        sim = NoCSimulator(mesh, cfg)
        original_eject = sim._eject

        def tracking_eject(flit, cycle, in_vc):
            ejected.append((flit.packet.pid, flit.index, cycle))
            original_eject(flit, cycle, in_vc)

        sim._eject = tracking_eject
        tm = uniform_random_traffic(16, 60_000, seed=9)
        sim.inject(tm.to_packets(cfg))
        sim.run()

        per_packet: dict[int, list[tuple[int, int]]] = {}
        for pid, index, cycle in ejected:
            per_packet.setdefault(pid, []).append((cycle, index))
        for pid, events in per_packet.items():
            indices = [i for _, i in sorted(events, key=lambda e: (e[0], e[1]))]
            assert indices == sorted(indices), f"packet {pid} flits out of order"

    def test_head_before_tail(self):
        mesh = Mesh2D(4, 4)
        cfg = NoCConfig()
        sim = NoCSimulator(mesh, cfg)
        tm = uniform_random_traffic(16, 60_000, seed=10)
        packets = tm.to_packets(cfg)
        sim.inject(packets)
        sim.run()
        for p in packets:
            assert 0 <= p.head_arrival_cycle <= p.tail_arrival_cycle

    def test_latency_at_least_zero_load(self):
        """No packet beats the zero-load latency of its route."""
        mesh = Mesh2D(4, 4)
        cfg = NoCConfig()
        sim = NoCSimulator(mesh, cfg)
        tm = uniform_random_traffic(16, 100_000, seed=11)
        packets = tm.to_packets(cfg)
        sim.inject(packets)
        sim.run()
        per_hop = cfg.router_stages + cfg.link_latency - 1
        for p in packets:
            hops = mesh.hop_distance(p.src, p.dst)
            min_latency = (cfg.router_stages - 1) + per_hop * hops
            assert p.latency >= min_latency

    def test_no_buffer_overflow(self):
        """Credit flow control keeps every input VC within its capacity."""
        mesh = Mesh2D(4, 4)
        cfg = NoCConfig(vc_buffer_flits=2)
        sim = NoCSimulator(mesh, cfg)
        tm = uniform_random_traffic(16, 80_000, seed=12)
        sim.inject(tm.to_packets(cfg))

        original_step = sim._step

        def checked_step():
            moved = original_step()
            for router in sim.routers:
                for port_vcs in router.inputs:
                    for vc in port_vcs:
                        assert len(vc.fifo) <= cfg.vc_buffer_flits
            return moved

        sim._step = checked_step
        stats = sim.run()
        assert stats.packets_delivered > 0
