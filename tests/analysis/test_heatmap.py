"""ASCII mesh heatmap rendering."""

from __future__ import annotations

from repro.analysis import render_mesh_heatmap
from repro.noc.topology import EAST, LOCAL, NORTH, SOUTH, WEST
from repro.obs import NoCProfile


def east_stream_profile() -> NoCProfile:
    """Node 5 streaming 4,200 flits one hop east to node 6 on a 4x4 mesh."""
    p = NoCProfile(4, 4)
    p.link_flits[5, EAST] = 4200
    p.link_flits[6, LOCAL] = 4200
    p.router_flits[5] = 4200
    p.router_flits[6] = 4200
    p.cycles = 2549
    p.runs = 1
    return p


class TestHeatmap:
    def test_header_totals(self):
        text = render_mesh_heatmap(east_stream_profile())
        assert "4x4 mesh" in text
        assert "1 run(s)" in text
        assert "2,549 cycles" in text
        assert "4,200 flit-hops" in text

    def test_grid_shades_and_link_label(self):
        text = render_mesh_heatmap(east_stream_profile())
        lines = text.splitlines()
        # Row y=1 (line 3: header, row 0, vertical links, row 1) holds the
        # busy pair; busiest routers render dark, idle routers stay blank.
        assert "[@]" in lines[3]
        assert "4.2k" in lines[3]
        assert lines[1].replace("-", "").replace("[ ]", "") == ""

    def test_busiest_links_and_ejections(self):
        text = render_mesh_heatmap(east_stream_profile())
        assert "busiest links (top 1):" in text
        assert "(1,1)  east: 4,200 flits" in text
        assert "ejected flits: 4,200" in text

    def test_vertical_links_render_between_rows(self):
        p = NoCProfile(2, 2)
        # 0 -> 2 is one hop south; 2 -> 0 one hop north: both directions sum.
        p.link_flits[0, SOUTH] = 600
        p.link_flits[2, NORTH] = 400
        p.link_flits[2, LOCAL] = 600
        p.link_flits[0, LOCAL] = 400
        p.router_flits[[0, 2]] = 1000
        p.cycles = 100
        text = render_mesh_heatmap(p)
        assert "1.0k" in text  # 600 + 400 on the shared vertical link pair

    def test_empty_profile_renders(self):
        text = render_mesh_heatmap(NoCProfile(3, 3))
        assert "3x3 mesh" in text
        assert "busiest" not in text
        assert "ejected flits: 0" in text

    def test_top_links_truncates(self):
        p = NoCProfile(4, 4)
        for n in range(8):
            p.link_flits[n, WEST if n % 2 else EAST] = 100 + n
        p.cycles = 10
        text = render_mesh_heatmap(p, top_links=3)
        assert "busiest links (top 3):" in text
        assert text.count("flits/cycle") == 3

    def test_zero_node_profile_reports_no_data(self):
        """A 0x0 profile (tracing enabled but no drains ran) must not raise."""
        text = render_mesh_heatmap(NoCProfile(0, 0))
        assert "no data" in text
        assert "0x0 mesh" in text
