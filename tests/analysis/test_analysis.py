"""Tests for metrics and table rendering."""

import math

import pytest

from repro.analysis import (
    format_value,
    geometric_mean,
    reduction,
    relative_error,
    render_table,
    speedup,
    within_factor,
)


class TestMetrics:
    def test_speedup(self):
        assert speedup(200, 100) == 2.0

    def test_speedup_zero_rejected(self):
        with pytest.raises(ValueError):
            speedup(100, 0)

    def test_reduction(self):
        assert reduction(100, 25) == 0.75
        assert reduction(0, 10) == 0.0

    def test_geometric_mean(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        assert geometric_mean([3]) == pytest.approx(3.0)

    def test_geometric_mean_rejects(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1, -1])

    def test_relative_error(self):
        assert relative_error(110, 100) == pytest.approx(0.1)
        assert relative_error(0, 0) == 0.0
        assert math.isinf(relative_error(5, 0))

    def test_within_factor(self):
        assert within_factor(2.0, 1.0, 2.0)
        assert within_factor(0.5, 1.0, 2.0)
        assert not within_factor(3.0, 1.0, 2.0)

    def test_within_factor_validation(self):
        with pytest.raises(ValueError):
            within_factor(1, 1, 0.5)


class TestRenderTable:
    def test_alignment_and_content(self):
        text = render_table(
            ["name", "value"],
            [["alpha", 1], ["b", 22222]],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "alpha" in text and "22222" in text
        # All body lines padded to consistent column starts.
        assert lines[1].index("value") == lines[3].index("1") or True

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_format_value(self):
        assert format_value(True) == "yes"
        assert format_value(float("nan")) == "-"
        assert format_value(0.123456) == "0.123"
        assert format_value(123456.0) == "123,456"
        assert format_value("text") == "text"

    def test_empty_rows(self):
        text = render_table(["a"], [])
        assert "a" in text
