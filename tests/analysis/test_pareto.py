"""Pareto-frontier selection on hand-built point sets."""

from repro.analysis import pareto_flags, pareto_front


class TestParetoFlags:
    def test_hand_built_frontier(self):
        # (goodput, p99): maximize x, minimize y.
        points = [
            (10.0, 100.0),  # optimal: lowest latency
            (20.0, 200.0),  # optimal: trades latency for goodput
            (15.0, 300.0),  # dominated by (20, 200)
            (30.0, 500.0),  # optimal: highest goodput
        ]
        assert pareto_flags(points) == [True, True, False, True]

    def test_single_point_is_optimal(self):
        assert pareto_flags([(1.0, 1.0)]) == [True]

    def test_empty(self):
        assert pareto_flags([]) == []
        assert pareto_front([]) == []

    def test_duplicates_both_survive(self):
        points = [(10.0, 100.0), (10.0, 100.0), (5.0, 200.0)]
        assert pareto_flags(points) == [True, True, False]

    def test_strict_domination_required(self):
        # Same goodput, worse latency -> dominated.
        assert pareto_flags([(10.0, 100.0), (10.0, 150.0)]) == [True, False]


class TestParetoFront:
    def test_sorted_by_descending_goodput(self):
        points = [(10.0, 100.0), (30.0, 500.0), (20.0, 200.0), (15.0, 300.0)]
        assert pareto_front(points) == [1, 2, 0]
