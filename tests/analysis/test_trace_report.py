"""Trace summaries: per-phase breakdown, metrics rendering, full report."""

from __future__ import annotations

from repro.analysis import phase_breakdown, render_metrics_snapshot, summarize_trace
from repro.analysis.trace_report import render_timeseries, sparkline
from repro.obs import NoCProfile


def span(name, sid, parent, dur, **attrs):
    return {
        "type": "span",
        "name": name,
        "id": sid,
        "parent": parent,
        "thread": "MainThread",
        "t_wall": 0.0,
        "dur_s": dur,
        "attrs": attrs,
    }


class TestPhaseBreakdown:
    def test_self_time_excludes_children(self):
        records = [
            span("sim.drain", 2, 1, 0.4),
            span("simulate.layer", 1, 0, 0.6),
            span("experiment", 0, None, 1.0),
        ]
        text = phase_breakdown(records)
        lines = {line.split()[0]: line for line in text.splitlines() if "." in line}
        # experiment: 1.0 total, 0.4 self; layer: 0.6 total, 0.2 self;
        # drain: 0.4 total and self — the biggest self time tops the table.
        assert "0.400" in lines["sim.drain"]
        assert "0.200" in lines["simulate.layer"]
        assert lines["experiment"].split()[1:4] == ["1", "1.000", "0.400"]
        assert "3 spans" in text and "1.000s traced" in text

    def test_aggregates_repeated_phases(self):
        records = [
            span("sim.drain", 1, 0, 0.25),
            span("sim.drain", 2, 0, 0.35),
            span("experiment", 0, None, 0.8),
        ]
        text = phase_breakdown(records)
        (drain_row,) = [l for l in text.splitlines() if l.strip().startswith("sim.drain")]
        assert drain_row.split()[1:4] == ["2", "0.600", "0.600"]

    def test_no_spans_message(self):
        assert "no spans" in phase_breakdown([{"type": "metrics"}])


class TestMetricsRendering:
    def test_sections_and_values(self):
        snapshot = {
            "counters": {"cache.drain_memo.hit": 12, "noc.runs{engine=event}": 3},
            "gauges": {"train.last_loss": 0.25},
            "histograms": {
                "train.epoch_loss": {
                    "count": 2, "total": 1.0, "mean": 0.5, "min": 0.4, "max": 0.6,
                }
            },
        }
        text = render_metrics_snapshot(snapshot)
        assert "cache.drain_memo.hit" in text and "12" in text
        assert "train.last_loss" in text and "0.25" in text
        assert "n=2 mean=0.5" in text

    def test_empty_snapshot(self):
        assert render_metrics_snapshot({}) == "metrics snapshot:"


class TestSummarizeTrace:
    def test_combines_all_sections(self):
        profile = NoCProfile(2, 2)
        profile.link_flits[0, 1] = 10
        profile.router_flits[0] = 10
        profile.cycles = 5
        records = [
            span("experiment", 0, None, 1.0),
            {"type": "metrics", "snapshot": {"counters": {"sim.drain_cycles": 7}}},
            {"type": "noc_profile", **profile.to_dict()},
        ]
        text = summarize_trace(records)
        assert "per-phase time breakdown" in text
        assert "sim.drain_cycles" in text
        assert "2x2 mesh" in text

    def test_empty_trace_reports_no_data(self):
        text = summarize_trace([])
        assert "no data" in text
        assert "--trace" in text

    def test_zero_span_trace_is_crash_proof(self):
        """Records present but no spans: every section degrades politely."""
        records = [{"type": "metrics", "snapshot": {}}]
        text = summarize_trace(records)
        assert "metrics snapshot:" in text

    def test_top_links_forwarded(self):
        profile = NoCProfile(4, 4)
        for n in range(8):
            profile.link_flits[n, 1] = 100 + n
        profile.cycles = 10
        records = [{"type": "noc_profile", **profile.to_dict()}]
        text = summarize_trace(records, top_links=2)
        assert "top 2" in text


def _series_record(slo=None):
    from repro.obs.timeseries import ServeTimeSeries

    s = ServeTimeSeries("demo", groups=1, window_cycles=100, slo_cycles=slo)
    for i in range(6):
        arrival = i * 40
        s.on_arrival(arrival)
        s.on_dispatch(arrival, 0, 30, 1)
        s.on_completion(i, arrival, arrival, arrival + 30, 0, 1)
    s.finalize()
    return s.to_dict()


class TestSparkline:
    def test_scales_to_series_max(self):
        line = sparkline([0, 1, 2, 4])
        assert len(line) == 4
        assert line[0] == " "  # zero renders blank
        assert line[-1] == "@"  # peak renders full

    def test_empty_and_flat_zero(self):
        assert sparkline([]) == ""
        assert sparkline([0, 0, 0]) == "   "


class TestRenderTimeseries:
    def test_panel_has_sparklines_table_and_cumulative(self):
        text = render_timeseries(_series_record())
        assert "serve time-series: demo" in text
        assert "completions" in text and "|" in text
        assert "window start" in text
        assert "cumulative: 6 requests" in text
        assert "slo" not in text.split("cumulative")[1]

    def test_slo_lines_present_when_target_set(self):
        text = render_timeseries(_series_record(slo=10))
        assert "slo burn" in text
        assert "slo: target 10 cycles" in text
        assert "violations" in text

    def test_empty_series_degrades(self):
        from repro.obs.timeseries import ServeTimeSeries

        s = ServeTimeSeries("idle", groups=2, window_cycles=50)
        s.finalize()
        text = render_timeseries(s.to_dict())
        assert "no windows" in text

    def test_table_caps_rows(self):
        from repro.obs.timeseries import ServeTimeSeries

        s = ServeTimeSeries("long", groups=1, window_cycles=10, max_windows=64)
        for i in range(40):
            s.on_arrival(i * 10)
            s.on_dispatch(i * 10, 0, 5, 1)
            s.on_completion(i, i * 10, i * 10, i * 10 + 5, 0, 1)
        s.finalize()
        text = render_timeseries(s.to_dict(), max_rows=5)
        assert "last 5 of" in text

    def test_summarize_trace_includes_series_panel(self):
        records = [
            span("experiment", 0, None, 1.0),
            _series_record(),
        ]
        text = summarize_trace(records)
        assert "per-phase time breakdown" in text
        assert "serve time-series: demo" in text
