"""Scaling study: how core count changes the communication problem.

Pure geometry — no training.  Maps AlexNet with traditional parallelization
onto chips of 4..64 cores and reports the communication-blocked fraction of
single-pass latency, plus the latency/throughput trade-off against a
data-parallel (one-input-per-core) deployment of the same chip.

Run:  python examples/scaling_study.py
"""

from repro.accel import ChipConfig
from repro.analysis import render_table
from repro.models import get_spec
from repro.partition import build_traditional_plan
from repro.sim import InferenceSimulator, compare_deployments


def main() -> None:
    spec = get_spec("alexnet")

    rows = []
    for cores in (4, 8, 16, 32, 64):
        chip = ChipConfig.table2(cores)
        plan = build_traditional_plan(spec, cores)
        result = InferenceSimulator(chip).simulate(plan)
        comparison = compare_deployments(spec, chip)
        rows.append([
            cores,
            result.total_cycles,
            f"{result.comm_fraction:.1%}",
            f"{comparison.latency_advantage:.1f}x",
            f"{comparison.throughput_advantage:.1f}x",
        ])

    print(render_table(
        [
            "cores", "single-pass cycles", "comm fraction",
            "latency vs data-parallel", "throughput of data-parallel",
        ],
        rows,
        title="AlexNet, traditional parallelization, Table II chip",
    ))
    print(
        "\nMore cores shrink compute but the synchronization share grows — "
        "the scaling wall the\npaper's communication-aware schemes attack. "
        "Data-parallel deployment flips the trade-off:\nbetter total "
        "throughput, worse response time per query."
    )


if __name__ == "__main__":
    main()
