"""Structure-level parallelization: grouped convolutions as a communication
optimization (paper §IV.B, Table III).

Trains the (scaled) Table III ConvNet with different group counts on an
ImageNet10-like dataset, maps each variant on a 16-core chip, and shows the
accuracy / speedup trade-off plus the widening trick (Parallel#3) that buys
the accuracy back.

Run:  python examples/structure_level_grouping.py
"""

from repro.analysis import render_table
from repro.datasets import synthetic_imagenet10
from repro.models import NetworkSpec, build_table3_convnet
from repro.partition import build_traditional_plan
from repro.sim import InferenceSimulator
from repro.accel import ChipConfig
from repro.train import TrainConfig, Trainer


def train_variant(groups: int, wide: bool, dataset, epochs: int = 8):
    model = build_table3_convnet(groups=groups, wide=wide, seed=0)
    Trainer(model, TrainConfig(epochs=epochs, lr=0.05)).fit(dataset)
    return model, model.accuracy(dataset.x_test, dataset.y_test)


def main() -> None:
    num_cores = 16
    dataset = synthetic_imagenet10(train_size=800, test_size=300)
    simulator = InferenceSimulator(ChipConfig.table2(num_cores))

    variants = [
        ("parallel#1 (n=1)", 1, False),
        ("parallel#2 (n=16)", 16, False),
        ("parallel#3 (n=16, wide)", 16, True),
    ]

    results = []
    base_result = None
    for label, groups, wide in variants:
        model, accuracy = train_variant(groups, wide, dataset)
        spec = NetworkSpec.from_sequential(model)
        plan = build_traditional_plan(
            spec, num_cores, scheme="structure" if groups > 1 else "traditional"
        )
        result = simulator.simulate(plan)
        if base_result is None:
            base_result = result
        results.append((label, accuracy, plan, result))

    rows = []
    for label, accuracy, plan, result in results:
        rows.append([
            label,
            f"{accuracy:.3f}",
            plan.total_traffic_bytes,
            f"{result.speedup_vs(base_result):.2f}x",
            f"{result.comm_energy_reduction_vs(base_result):.0%}",
        ])
    print(render_table(
        ["variant", "accuracy", "NoC bytes", "speedup", "comm energy red."],
        rows,
        title="Structure-level parallelization on 16 cores (paper Table III)",
    ))
    print(
        "\nGrouping conv2/conv3 removes their synchronization traffic AND "
        "their cross-group MACs;\nwidening the grouped network (parallel#3) "
        "recovers the accuracy the split costs."
    )


if __name__ == "__main__":
    main()
