"""Quickstart: train a small network and compare all three parallelization
schemes on the paper's 16-core chip.

Run:  python examples/quickstart.py
"""

from repro.accel import ChipConfig
from repro.datasets import synthetic_mnist
from repro.models import build_mlp
from repro.partition import build_sparsified_plan
from repro.sim import InferenceSimulator
from repro.train import SparsifyConfig, TrainConfig, Trainer, train_sparsified
from repro.analysis import render_table

def main() -> None:
    num_cores = 16
    dataset = synthetic_mnist(train_size=1000, test_size=400, flat=True)

    # 1. Train the dense baseline.
    model = build_mlp(seed=0)
    Trainer(model, TrainConfig(epochs=8, lr=0.05)).fit(dataset)
    baseline_accuracy = model.accuracy(dataset.x_test, dataset.y_test)
    baseline_state = model.state_dict()

    # 2. The traditional plan of the dense model is the baseline mapping.
    chip = ChipConfig.table2(num_cores)
    simulator = InferenceSimulator(chip)
    baseline_plan = build_sparsified_plan(model, num_cores, scheme="baseline")
    baseline_result = simulator.simulate(baseline_plan)

    rows = [[
        "baseline", f"{baseline_accuracy:.3f}", "100%", "1.00x", "0%",
    ]]

    # 3. Retrain with uniform (SS) and distance-masked (SS_Mask) group Lasso.
    for scheme in ("ss", "ss_mask"):
        model.load_state_dict(baseline_state)
        outcome = train_sparsified(
            model, dataset, num_cores, scheme, SparsifyConfig(lam_g=0.1)
        )
        plan = build_sparsified_plan(model, num_cores, scheme=scheme)
        result = simulator.simulate(plan)
        rows.append([
            scheme,
            f"{outcome.accuracy:.3f}",
            f"{plan.traffic_rate_vs(baseline_plan):.0%}",
            f"{result.speedup_vs(baseline_result):.2f}x",
            f"{result.comm_energy_reduction_vs(baseline_result):.0%}",
        ])

    print(render_table(
        ["scheme", "accuracy", "NoC traffic", "speedup", "NoC energy red."],
        rows,
        title=f"MLP on a {num_cores}-core mesh CMP (Table II configuration)",
    ))
    print(
        "\nThe distance-masked scheme (ss_mask) keeps its surviving traffic "
        "between adjacent cores,\nwhich is why it matches or beats ss on "
        "speedup even when it moves similar byte counts."
    )


if __name__ == "__main__":
    main()
