"""Communication-aware sparsified training, visualized (paper §IV.C, Fig. 6).

Trains the MLP with the SS_Mask recipe and prints:

* the hop-distance matrix of the 16-core mesh (the paper's "factor mask");
* the resulting block-norm matrix of ip2's weights (Fig. 6(b): blocks that
  would cause long-distance traffic are pruned away, near-diagonal blocks
  survive);
* the per-layer traffic matrices before and after sparsification.

Run:  python examples/communication_aware_training.py
"""

import numpy as np

from repro.datasets import synthetic_mnist
from repro.models import build_mlp
from repro.noc import Mesh2D
from repro.partition import (
    build_sparsified_plan,
    distance_strength_mask,
    hop_distance_matrix,
)
from repro.train import SparsifyConfig, TrainConfig, Trainer, train_sparsified


def ascii_matrix(m: np.ndarray, fmt: str = "{:4.0f}") -> str:
    return "\n".join("  ".join(fmt.format(v) for v in row) for row in m)


def ascii_blocks(norms: np.ndarray) -> str:
    """Fig.6(b)-style view: '#' = surviving block, '.' = pruned to zero."""
    return "\n".join(
        " ".join("#" if v > 0 else "." for v in row) for row in norms
    )


def main() -> None:
    num_cores = 16
    mesh = Mesh2D.for_nodes(num_cores)
    print(f"Mesh: {mesh.width}x{mesh.height}, diameter {mesh.diameter}\n")

    print("Hop-distance matrix (first 4 cores, as in Fig. 6(a)):")
    print(ascii_matrix(hop_distance_matrix(num_cores)[:4, :4]))
    print("\nSS_Mask strength matrix (first 4 cores, mean-normalized):")
    print(ascii_matrix(distance_strength_mask(num_cores)[:4, :4], "{:5.2f}"))

    dataset = synthetic_mnist(train_size=1000, test_size=400, flat=True)
    model = build_mlp(seed=0)
    Trainer(model, TrainConfig(epochs=8, lr=0.05)).fit(dataset)
    baseline_plan = build_sparsified_plan(model, num_cores, scheme="baseline")

    result = train_sparsified(
        model, dataset, num_cores, "ss_mask", SparsifyConfig(lam_g=0.1)
    )
    plan = build_sparsified_plan(model, num_cores, scheme="ss_mask")

    print(f"\nAccuracy after SS_Mask training: {result.accuracy:.3f}")
    norms = result.partitions["ip2.weight"].block_norms(
        model.get_parameter("ip2.weight").data
    )
    print("\nip2.weight block-norm pattern (rows = producer core, cols = "
          "consumer core; Fig. 6(b)):")
    print(ascii_blocks(norms))

    base_traffic = baseline_plan.layers[1].traffic
    new_traffic = plan.layers[1].traffic
    print(f"\nip2 synchronization traffic: {base_traffic.total_bytes} B -> "
          f"{new_traffic.total_bytes} B")
    print(f"average hop distance of that traffic: "
          f"{base_traffic.weighted_average_distance(mesh):.2f} -> "
          f"{new_traffic.weighted_average_distance(mesh):.2f}")


if __name__ == "__main__":
    main()
