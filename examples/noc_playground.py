"""Exploring the NoC substrate on its own.

Runs the cycle-level mesh simulator on classic synthetic patterns and on a
real layer-transition burst from AlexNet, reporting drain time, latency,
energy breakdown, and how the cycle-level results compare with the
analytical bound.

Run:  python examples/noc_playground.py
"""

from repro.analysis import render_table
from repro.models import get_spec
from repro.noc import (
    Mesh2D,
    NoCConfig,
    NoCEnergyModel,
    NoCSimulator,
    estimate_drain_cycles,
    neighbor_traffic,
    transpose_traffic,
    uniform_random_traffic,
)
from repro.partition import build_traditional_plan


def run_pattern(name, traffic, mesh, config):
    sim = NoCSimulator(mesh, config)
    sim.inject(traffic.to_packets(config))
    stats = sim.run()
    bound = estimate_drain_cycles(traffic, mesh, config)
    energy = NoCEnergyModel().simulation_energy(stats, mesh.num_nodes)
    return [
        name,
        traffic.total_bytes,
        stats.cycles,
        bound.cycles,
        f"{stats.avg_packet_latency:.0f}",
        f"{energy.total_j * 1e9:.1f} nJ",
    ]


def main() -> None:
    mesh = Mesh2D.for_nodes(16)
    config = NoCConfig()
    total = 16 * 15 * 1216  # one max-size packet per (src, dst) pair

    rows = [
        run_pattern("uniform", uniform_random_traffic(16, total, seed=0), mesh, config),
        run_pattern("transpose", transpose_traffic(mesh, 12 * 1216), mesh, config),
        run_pattern("neighbor", neighbor_traffic(mesh, 12 * 1216), mesh, config),
    ]

    # A real burst: AlexNet's conv3 layer transition on 16 cores.
    plan = build_traditional_plan(get_spec("alexnet"), 16)
    conv3 = next(lp for lp in plan.layers if lp.layer.name == "conv3")
    rows.append(run_pattern("alexnet conv3", conv3.traffic, mesh, config))

    print(render_table(
        ["pattern", "bytes", "drain cycles", "analytical bound",
         "avg pkt latency", "dynamic+static energy"],
        rows,
        title="Cycle-level NoC simulation (Table II configuration, 4x4 mesh)",
    ))
    print(
        "\nThe cycle-level drain time exceeds the analytical estimate by the "
        "congestion the\nclosed form cannot see; adversarial patterns "
        "(transpose) suffer more than neighbor traffic."
    )


if __name__ == "__main__":
    main()
